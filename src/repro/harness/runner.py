"""Experiment runner: compile-once, trace-once, simulate-many.

Ties the whole system together for the evaluation: for each workload it

1. builds the ``train`` and ``eval`` program variants,
2. runs the SPEAR compiler on the training variant (profiling input),
3. generates the evaluation committed-path trace, and
4. replays that trace through any number of machine configurations.

Traces, compiled binaries and results are memoized so a figure that needs
the same (workload, config) pair as another figure pays nothing extra.
With a :class:`~repro.harness.diskcache.DiskCache` attached the memo
extends across processes and invocations: artifacts and results are read
through from disk and written through on build, so a warm rerun of any
figure pays neither compilation, tracing nor simulation.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from ..compiler.driver import CompileReport, compile_spear
from ..compiler.slicer import SlicerConfig
from ..core.configs import MachineConfig
from ..core.spear_binary import SpearBinary
from ..functional.simulator import FunctionalSimulator
from ..functional.trace import Trace
from ..memory.hierarchy import FIG9_LATENCIES, LatencyConfig, MemoryHierarchy
from ..observe.events import TraceEvent
from ..observe.sampler import IntervalSampler
from ..observe.sinks import JsonlStreamSink, RingBufferSink
from ..pipeline.fastforward import FastForwardSimulator
from ..pipeline.kernel import DEFAULT_BACKEND, make_simulator, resolve_kernel
from ..pipeline.stats import PipelineResult
from ..pipeline.sweep import BatchedSweepSimulator
from ..policy import DEFAULT_POLICY, make_policy, resolve_policy
from ..workloads.base import Workload, get_workload
from .diskcache import DiskCache


@dataclass
class TracedRun:
    """One observed simulation: the result plus its event stream.

    ``result`` carries the interval timeline; ``events`` are the retained
    ring-buffer contents (newest ``capacity`` events — ``dropped`` says
    how many older ones the ring displaced, so truncation is explicit).
    """

    result: PipelineResult
    events: list[TraceEvent]
    emitted: int
    dropped: int


@dataclass(frozen=True)
class TraceSpec:
    """The trace parameters that identify one traced-run cell.

    Hashable and picklable so it can ride on a parallel-engine
    :class:`~repro.harness.parallel.Cell`; ``kinds`` is normalized to a
    sorted tuple so equal filters always produce equal cache keys.
    """

    interval: int = 1000
    capacity: int | None = 65536
    kinds: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.kinds is not None:
            object.__setattr__(self, "kinds", tuple(sorted(self.kinds)))

    def payload(self) -> dict:
        """The ``trace`` section of a traced-run cache/journal key."""
        return {"interval": self.interval, "capacity": self.capacity,
                "kinds": list(self.kinds) if self.kinds else None}


@dataclass
class WorkloadArtifacts:
    """Everything derived from one workload, built lazily."""

    workload: Workload
    binary: SpearBinary
    compile_report: CompileReport
    eval_trace: Trace
    #: prefix replayed functionally before measurement (cache/predictor
    #: warmup — the paper's "skipped instructions")
    warmup_trace: list


#: The sweep pseudo-backend: not a per-run kernel, but accepted wherever
#: a backend knob appears — sweeps batch, single cells fall back to the
#: sweep's inner kernel (results are byte-identical either way).
SWEEP_BACKEND = BatchedSweepSimulator.backend


class ExperimentRunner:
    """Caching façade over the compile → trace → simulate pipeline."""

    def __init__(self, *, slicer_config: SlicerConfig | None = None,
                 instruction_scale: float = 1.0,
                 cache: DiskCache | None = None,
                 backend: str | None = None,
                 policy: str | None = None):
        """``instruction_scale`` scales every workload's instruction budget
        (useful to shrink CI runs or enlarge final ones).  ``cache`` is an
        optional persistent artifact cache shared across processes.
        ``backend`` selects the timing kernel every simulation runs on
        (any :data:`~repro.pipeline.kernel.KERNELS` name, or ``"batched"``
        to additionally batch latency sweeps); per-call overrides win.
        ``policy`` selects the trigger policy (any
        :data:`~repro.policy.POLICIES` name) the same way."""
        self.slicer_config = slicer_config or SlicerConfig()
        self.instruction_scale = instruction_scale
        self.cache = cache
        self.backend = DEFAULT_BACKEND if backend is None else backend
        self.policy = resolve_policy(policy)   # fail fast on unknown names
        if self.backend != SWEEP_BACKEND:
            resolve_kernel(self.backend)   # fail fast on unknown names
        self._artifacts: dict[str, WorkloadArtifacts] = {}
        self._results: dict[tuple, PipelineResult] = {}
        #: traced runs memoize separately: their results carry timelines
        #: and must never masquerade as plain "results" cache entries.
        self._traced: dict[tuple, TracedRun] = {}
        #: fuzz verdicts memoize under their own kind too — a verdict is
        #: the outcome of many runs plus the differential checks, not a
        #: ``PipelineResult``.
        self._fuzz: dict[tuple, object] = {}
        #: artifact builds actually executed (cache hits don't count)
        self.builds = 0
        #: timing simulations actually executed (memo/cache hits don't count)
        self.simulations = 0

    # -- cache keys -----------------------------------------------------------

    def _kernel(self, backend: str | None) -> str:
        """The per-run kernel name a backend choice resolves to.

        ``None`` defers to the runner default; the ``batched`` sweep
        pseudo-backend degrades to its inner kernel for single cells.
        """
        if backend is None:
            backend = self.backend
        if backend == SWEEP_BACKEND:
            return FastForwardSimulator.backend
        return backend

    def effective_policy(self, policy: str | None,
                         config: MachineConfig) -> str:
        """The policy name a (request, config) pair actually runs under.

        ``None`` defers to the runner default.  Baseline (non-SPEAR)
        configs have no trigger to steer, so they always resolve to the
        fixed policy — which keeps their memo/cache keys, results and
        traces byte-identical whatever policy the caller requested.
        """
        name = resolve_policy(self.policy if policy is None else policy)
        if not config.spear_enabled:
            return DEFAULT_POLICY
        return name

    def _artifact_payload(self, name: str) -> dict:
        return {"workload": name,
                "scale": self.instruction_scale,
                "slicer": asdict(self.slicer_config)}

    def result_payload(self, name: str, config: MachineConfig,
                       backend: str | None = None,
                       policy: str | None = None) -> dict:
        """Cache/journal key payload of one (workload, config) result.

        Non-reference backends are tagged into the payload; the reference
        kernel keeps the untagged (pre-backend) key, so existing caches
        stay valid and cross-backend entries can never collide.  The same
        rule covers policies: only a non-fixed *effective* policy is
        tagged, so fixed-policy keys are byte-identical to pre-policy
        ones and adaptive entries can never collide with them.
        """
        payload = self._artifact_payload(name)
        payload["config"] = asdict(config)
        kernel = self._kernel(backend)
        if kernel != DEFAULT_BACKEND:
            payload["backend"] = kernel
        pol = self.effective_policy(policy, config)
        if pol != DEFAULT_POLICY:
            payload["policy"] = pol
        return payload

    def traced_payload(self, name: str, config: MachineConfig,
                       spec: TraceSpec, backend: str | None = None,
                       policy: str | None = None) -> dict:
        """Cache/journal key payload of one traced cell — the result key
        plus the trace parameters, under the ``"traces"`` kind."""
        payload = self.result_payload(name, config, backend, policy)
        payload["trace"] = spec.payload()
        return payload

    def fuzz_payload(self, name: str, check) -> dict:
        """Cache/journal key payload of one fuzz cell: the workload name
        (which fully encodes the generated program), the runner knobs
        that change evaluation, and every differential-check knob."""
        payload = self._artifact_payload(name)
        payload["fuzz"] = check.payload()
        return payload

    @staticmethod
    def normalize_config(config: MachineConfig,
                         latencies: LatencyConfig | None) -> MachineConfig:
        """Fold a latency override into the config — without allocating a
        fresh (but equal) ``MachineConfig`` when the override is a no-op,
        so memo keys dedupe across e.g. figure 9's latency sweep."""
        if latencies is not None and latencies != config.latencies:
            config = config.with_latencies(latencies)
        return config

    # -- artifact construction ------------------------------------------------

    def artifacts(self, name: str) -> WorkloadArtifacts:
        art = self._artifacts.get(name)
        if art is None:
            if self.cache is not None:
                art = self.cache.get("artifacts", self._artifact_payload(name))
            if art is None:
                art = self._build(name)
                self.builds += 1
                if self.cache is not None:
                    self.cache.put("artifacts", self._artifact_payload(name),
                                   art)
            self._artifacts[name] = art
        return art

    def _build(self, name: str) -> WorkloadArtifacts:
        workload = get_workload(name)
        train = workload.program("train")
        evalp = workload.program("eval")
        profile_budget = int(workload.profile_instructions
                             * self.instruction_scale)
        binary, report, _ = compile_spear(
            train, evalp, slicer_config=self.slicer_config,
            max_profile_instructions=profile_budget)
        eval_budget = int(workload.eval_instructions * self.instruction_scale)
        warm_budget = int(workload.warmup_instructions * self.instruction_scale)
        sim = FunctionalSimulator(evalp)
        full = sim.run(warm_budget + eval_budget, trace=True)
        # A workload that halts early still needs a measurable window.
        warm_budget = min(warm_budget, max(0, len(full.entries) - eval_budget))
        warmup = full.entries[:warm_budget]
        measured = Trace(full.entries[warm_budget:],
                         program_name=full.program_name, halted=full.halted)
        return WorkloadArtifacts(workload, binary, report, measured, warmup)

    # -- simulation -----------------------------------------------------------

    def run(self, name: str, config: MachineConfig,
            latencies: LatencyConfig | None = None, *,
            backend: str | None = None,
            policy: str | None = None) -> PipelineResult:
        """Simulate one workload under one machine configuration.

        A non-fixed effective ``policy`` takes the adaptive path (its own
        4-tuple memo key and policy-tagged cache payload); the fixed
        policy is this exact pre-policy code path, unchanged.
        """
        config = self.normalize_config(config, latencies)
        kernel = self._kernel(backend)
        pol = self.effective_policy(policy, config)
        if pol != DEFAULT_POLICY:
            return self._run_adaptive(name, config, kernel, pol)
        key = (name, config, kernel)
        result = self._results.get(key)
        if result is None:
            if self.cache is not None:
                result = self.cache.get(
                    "results", self.result_payload(name, config, kernel))
            if result is None:
                art = self.artifacts(name)
                memory = MemoryHierarchy(latencies=config.latencies)
                sim = make_simulator(kernel, art.eval_trace, config,
                                     art.binary.table, memory,
                                     warmup=art.warmup_trace)
                result = sim.run()
                self.simulations += 1
                if self.cache is not None:
                    self.cache.put(
                        "results", self.result_payload(name, config, kernel),
                        result)
            self._results[key] = result
        return result

    def _run_adaptive(self, name: str, config: MachineConfig, kernel: str,
                      pol: str) -> PipelineResult:
        """One cell under a non-fixed policy.

        ``adaptive-epoch`` converges through plain fixed runs (each one
        memoized under its ordinary key, so epochs are shared with — and
        epoch 0 *is* — the fixed result); ``adaptive-phase`` attaches a
        fresh in-run controller.  Either way the outcome memoizes under a
        ``(name, config, kernel, policy)`` 4-tuple — a different tuple
        length than fixed keys, so the two can never collide.
        """
        key = (name, config, kernel, pol)
        result = self._results.get(key)
        if result is None:
            payload = self.result_payload(name, config, kernel, pol)
            if self.cache is not None:
                result = self.cache.get("results", payload)
            if result is None:
                policy_obj = make_policy(pol)
                converged = policy_obj.converge(
                    lambda cfg: self.run(name, cfg, backend=kernel,
                                         policy=DEFAULT_POLICY), config)
                if converged is not None:
                    result, _ = converged
                else:
                    art = self.artifacts(name)
                    memory = MemoryHierarchy(latencies=config.latencies)
                    sim = make_simulator(
                        kernel, art.eval_trace, config, art.binary.table,
                        memory, warmup=art.warmup_trace,
                        policy=policy_obj.make_controller(config))
                    result = sim.run()
                    self.simulations += 1
                if self.cache is not None:
                    self.cache.put("results", payload, result)
            self._results[key] = result
        return result

    def run_sweep(self, name: str, config: MachineConfig,
                  latencies: list[LatencyConfig] | None = None, *,
                  kernel: str | None = None,
                  policy: str | None = None) -> list[PipelineResult]:
        """Simulate one workload across a memory-latency sweep, batched.

        All points missing from the memo and disk cache go through one
        :class:`~repro.pipeline.sweep.BatchedSweepSimulator` pass, which
        pays the trace-flag walk and warmup replay once instead of once
        per point.  Results are byte-identical to independent runs, and
        are memoized under the sweep's inner per-run ``kernel``
        (fast-forward unless overridden) so later single-cell runs on
        that kernel hit them.  Returns results in ``latencies`` order.
        """
        if latencies is None:
            latencies = list(FIG9_LATENCIES)
        kernel = self._kernel(SWEEP_BACKEND if kernel is None else kernel)
        if self.effective_policy(policy, config) != DEFAULT_POLICY:
            # A batched sweep shares one compile/trace pass across points
            # but cannot thread per-point epoch loops or controllers, so
            # adaptive sweeps degrade to independent per-point runs —
            # same results, one trace walk per point instead of one total.
            return [self.run(name, config, lat, backend=kernel,
                             policy=policy) for lat in latencies]
        keys, missing = [], []
        for lat in latencies:
            cfg = self.normalize_config(config, lat)
            key = (name, cfg, kernel)
            keys.append(key)
            if key in self._results:
                continue
            cached = None
            if self.cache is not None:
                cached = self.cache.get(
                    "results", self.result_payload(name, cfg, kernel))
            if cached is not None:
                self._results[key] = cached
            else:
                missing.append(lat)
        if missing:
            art = self.artifacts(name)
            sweep = BatchedSweepSimulator(art.eval_trace, config, missing,
                                          art.binary.table,
                                          warmup=art.warmup_trace,
                                          kernel=kernel)
            for lat, result in zip(missing, sweep.run()):
                self.simulations += 1
                cfg = self.normalize_config(config, lat)
                self._results[(name, cfg, kernel)] = result
                if self.cache is not None:
                    self.cache.put(
                        "results", self.result_payload(name, cfg, kernel),
                        result)
        return [self._results[key] for key in keys]

    def run_traced(self, name: str, config: MachineConfig,
                   latencies: LatencyConfig | None = None, *,
                   interval: int = 1000, capacity: int | None = 65536,
                   kinds: tuple[str, ...] | None = None,
                   spec: TraceSpec | None = None,
                   backend: str | None = None,
                   policy: str | None = None) -> TracedRun:
        """Simulate one cell with tracing and interval sampling attached.

        Traced runs are cached under their own kind ("traces") with the
        trace parameters folded into the key, so they coexist with — and
        never pollute — the plain "results" entries the figures, journal
        and parallel engine consume.  ``spec`` bundles the trace
        parameters (the parallel engine ships it on the cell); when given
        it overrides the individual keyword arguments.

        Policies follow the same rules as :meth:`run`: ``adaptive-phase``
        attaches its controller to the traced simulation (so
        ``policy-decision`` events land in the stream and the decision
        series in the timeline); ``adaptive-epoch`` first converges
        through plain runs, then traces one run at the converged
        operating point — in-run decision events only ever appear under
        ``adaptive-phase``.
        """
        if spec is None:
            spec = TraceSpec(interval, capacity,
                             tuple(kinds) if kinds is not None else None)
        config = self.normalize_config(config, latencies)
        kernel = self._kernel(backend)
        pol = self.effective_policy(policy, config)
        key = ((name, config, spec, kernel) if pol == DEFAULT_POLICY
               else (name, config, spec, kernel, pol))
        traced = self._traced.get(key)
        if traced is None:
            payload = self.traced_payload(name, config, spec, kernel, pol)
            if self.cache is not None:
                traced = self.cache.get("traces", payload)
            if traced is None:
                import dataclasses
                run_cfg, controller, epoch_summary = config, None, None
                if pol != DEFAULT_POLICY:
                    policy_obj = make_policy(pol)
                    controller = policy_obj.make_controller(config)
                    if controller is None:
                        # Epoch mode: trace the converged operating point.
                        converged = self.run(name, config, backend=kernel,
                                             policy=pol)
                        epoch_summary = converged.policy
                        run_cfg = dataclasses.replace(
                            config,
                            trigger_occupancy_fraction=epoch_summary[
                                "final_fraction"],
                            chaining=epoch_summary["final_chaining"])
                art = self.artifacts(name)
                sink = RingBufferSink(spec.capacity, kinds=spec.kinds)
                sampler = IntervalSampler(spec.interval)
                memory = MemoryHierarchy(latencies=run_cfg.latencies)
                sim = make_simulator(kernel, art.eval_trace, run_cfg,
                                     art.binary.table, memory,
                                     warmup=art.warmup_trace,
                                     tracer=sink, sampler=sampler,
                                     policy=controller)
                result = sim.run()
                self.simulations += 1
                if epoch_summary is not None:
                    result = dataclasses.replace(result, policy=epoch_summary)
                traced = TracedRun(result, sink.events(), sink.emitted,
                                   sink.dropped)
                if self.cache is not None:
                    self.cache.put("traces", payload, traced)
            self._traced[key] = traced
        return traced

    def run_streamed(self, name: str, config: MachineConfig,
                     target, latencies: LatencyConfig | None = None, *,
                     interval: int = 1000,
                     kinds: tuple[str, ...] | None = None,
                     backend: str | None = None
                     ) -> tuple[PipelineResult, int]:
        """Simulate with every event streamed to ``target`` as JSONL.

        The full-length capture path for billion-cycle runs: events go
        straight to the stream (a path or writable text file) through
        :class:`JsonlStreamSink`, so nothing is buffered in memory and
        nothing is cached — the stream itself is the artifact.  Returns
        the (timeline-carrying) result and the emitted-event count.
        """
        config = self.normalize_config(config, latencies)
        art = self.artifacts(name)
        sink = JsonlStreamSink(target, kinds=kinds)
        try:
            sampler = IntervalSampler(interval)
            memory = MemoryHierarchy(latencies=config.latencies)
            sim = make_simulator(self._kernel(backend), art.eval_trace,
                                 config, art.binary.table, memory,
                                 warmup=art.warmup_trace,
                                 tracer=sink, sampler=sampler)
            result = sim.run()
            self.simulations += 1
        finally:
            sink.close()
        return result, sink.emitted

    def run_fuzz(self, name: str, check):
        """Evaluate one generated kernel differentially (memo/cached).

        ``name`` must be a ``fuzz:`` workload name; the verdict — a
        small picklable :class:`~repro.fuzz.differential.FuzzVerdict` —
        caches under the ``"fuzz"`` kind, so campaigns resume and rerun
        for free exactly like figures do.
        """
        from ..fuzz.differential import evaluate_workload
        key = (name, check)
        verdict = self._fuzz.get(key)
        if verdict is None:
            if self.cache is not None:
                verdict = self.cache.get("fuzz", self.fuzz_payload(name,
                                                                   check))
            if verdict is None:
                workload = get_workload(name)
                verdict = evaluate_workload(
                    workload, check, slicer_config=self.slicer_config,
                    scale=self.instruction_scale)
                self.simulations += len(check.configs) * len(check.backends)
                if self.cache is not None:
                    self.cache.put("fuzz", self.fuzz_payload(name, check),
                                   verdict)
            self._fuzz[key] = verdict
        return verdict

    def seed_fuzz(self, name: str, check, verdict) -> None:
        """Adopt a verdict computed elsewhere (parallel engine merge)."""
        self._fuzz[(name, check)] = verdict

    def has_fuzz(self, name: str, check) -> bool:
        """Whether the memo already holds this fuzz cell's verdict."""
        return (name, check) in self._fuzz

    def _result_key(self, name: str, config: MachineConfig,
                    latencies: LatencyConfig | None,
                    backend: str | None, policy: str | None) -> tuple:
        """The memo key :meth:`run` uses — fixed keys keep the pre-policy
        3-tuple shape, adaptive keys append the policy name (a 4-tuple),
        so the two populations can never collide."""
        config = self.normalize_config(config, latencies)
        kernel = self._kernel(backend)
        pol = self.effective_policy(policy, config)
        if pol == DEFAULT_POLICY:
            return (name, config, kernel)
        return (name, config, kernel, pol)

    def seed_result(self, name: str, config: MachineConfig,
                    latencies: LatencyConfig | None,
                    result: PipelineResult,
                    backend: str | None = None,
                    policy: str | None = None) -> None:
        """Adopt a result computed elsewhere (the parallel engine's merge)."""
        self._results[self._result_key(name, config, latencies, backend,
                                       policy)] = result

    def has_result(self, name: str, config: MachineConfig,
                   latencies: LatencyConfig | None = None,
                   backend: str | None = None,
                   policy: str | None = None) -> bool:
        """Whether the memo already holds this cell's result — the one
        blessed membership check (parallel engine, journal resume)."""
        return self._result_key(name, config, latencies, backend,
                                policy) in self._results

    def _traced_key(self, name: str, config: MachineConfig,
                    latencies: LatencyConfig | None, spec: TraceSpec,
                    backend: str | None, policy: str | None) -> tuple:
        """The memo key :meth:`run_traced` uses (same shape rule as
        :meth:`_result_key`)."""
        config = self.normalize_config(config, latencies)
        kernel = self._kernel(backend)
        pol = self.effective_policy(policy, config)
        if pol == DEFAULT_POLICY:
            return (name, config, spec, kernel)
        return (name, config, spec, kernel, pol)

    def seed_traced(self, name: str, config: MachineConfig,
                    latencies: LatencyConfig | None, spec: TraceSpec,
                    traced: TracedRun, backend: str | None = None,
                    policy: str | None = None) -> None:
        """Adopt a traced run computed elsewhere (the parallel engine's
        merge resolves the spilled cache entry, then seeds it here)."""
        self._traced[self._traced_key(name, config, latencies, spec,
                                      backend, policy)] = traced

    def has_traced(self, name: str, config: MachineConfig,
                   latencies: LatencyConfig | None, spec: TraceSpec,
                   backend: str | None = None,
                   policy: str | None = None) -> bool:
        """Whether the memo already holds this traced cell."""
        return self._traced_key(name, config, latencies, spec, backend,
                                policy) in self._traced

    def has_artifact(self, name: str) -> bool:
        """Whether ``name``'s artifacts are already memoized in-process."""
        return name in self._artifacts

    def seed_artifact(self, name: str, artifacts: WorkloadArtifacts) -> None:
        """Adopt artifacts built elsewhere (the parallel engine's merge)."""
        self._artifacts[name] = artifacts

    def speedup(self, name: str, config: MachineConfig,
                baseline: MachineConfig,
                latencies: LatencyConfig | None = None) -> float:
        """Normalized IPC of ``config`` over ``baseline``."""
        return (self.run(name, config, latencies).ipc
                / self.run(name, baseline, latencies).ipc)

    def clear(self) -> None:
        """Drop every memo and reset the work counters, so a cleared
        runner reports as if freshly constructed."""
        self._artifacts.clear()
        self._results.clear()
        self._traced.clear()
        self._fuzz.clear()
        self.builds = 0
        self.simulations = 0
