"""Deterministic fault injection for the execution layer.

Set ``REPRO_FAULTS`` to a comma-separated fault spec and the harness
will inject failures at well-defined sites, so every recovery path in
:mod:`repro.harness.parallel` (retry, pool rebuild, serial degradation,
cache-corruption-as-miss) is testable in CI without real crashes.

Grammar::

    spec    := clause ("," clause)*
    clause  := kind (":" name "=" value)*
    kind    := crash | fail | delay | corrupt-cache
             | worker-kill | daemon-crash | torn-journal | disk-full

Parameters (all optional; a clause with neither ``cell`` nor ``p``
matches every candidate site):

``cell=N``
    Target the cell with submission index ``N``.
``p=F``
    Inject with probability ``F`` per site, decided by a seeded hash —
    the same (seed, site) always decides the same way, so runs are
    reproducible regardless of scheduling.
``times=N``
    Inject only on the first ``N`` attempts of a cell (default 1, so a
    retry succeeds; ``0`` means unlimited).
``ms=N``
    Delay duration in milliseconds (``delay`` only; default 50).
``kind=S``
    Cache namespace to corrupt (``corrupt-cache``/``disk-full`` only;
    default all).
``seed=N``
    Decision seed (default 0).
``at=STATE``
    Job transition to target (``daemon-crash``/``torn-journal`` only;
    default any transition).

Examples::

    REPRO_FAULTS=crash:cell=3                 # kill the worker running cell 3, once
    REPRO_FAULTS=fail:p=0.2:seed=7            # ~20% of first attempts raise
    REPRO_FAULTS=delay:p=0.5:ms=200           # half of all cells sleep 200ms
    REPRO_FAULTS=corrupt-cache:kind=results   # every result write is garbled

Fault kinds:

``crash``
    Hard-kills the worker process (``os._exit``), which the parent sees
    as a ``BrokenProcessPool``.  In the in-process serial path it raises
    :class:`InjectedCrash` instead (a real segfault there would take the
    whole run down; the injected analog stays recoverable).
``fail``
    Raises :class:`InjectedFault` inside the cell attempt.
``delay``
    Sleeps inside the cell attempt (drives the per-cell timeout).
``corrupt-cache``
    Garbles the bytes :class:`~repro.harness.diskcache.DiskCache.put`
    writes, exercising the corruption-is-a-miss recovery on later reads.

Server-side fault kinds (the ``repro serve`` chaos surface — see
:mod:`repro.serve`):

``worker-kill``
    Hard-kills the fleet worker running a job (``os._exit``); the
    supervisor sees ``BrokenProcessPool``, rebuilds the pool and
    re-runs the job.  ``times`` counts the job's submission attempts,
    so ``times=1`` kills only each job's first attempt.
``daemon-crash``
    Hard-exits the daemon immediately *after* it journals a job state
    transition (``at=RUNNING`` targets one transition; default any).
    A restarted daemon must re-adopt the journaled state.  Injections
    are counted per process; restart the daemon without the clause to
    observe the recovery (a fresh process starts a fresh count).
``torn-journal``
    Writes only the first half of a journal record's bytes, then
    hard-exits — the classic torn JSONL append.  Replay must skip the
    torn line and converge as if the record was never written.
``disk-full``
    Makes :meth:`~repro.harness.diskcache.DiskCache.put` raise
    ``OSError(ENOSPC)``; counted per process (``times=1`` fails the
    first store only, so a retry succeeds).
"""

from __future__ import annotations

import errno
import hashlib
import os
import time
from dataclasses import dataclass

#: Environment variable holding the active fault spec.
FAULTS_ENV = "REPRO_FAULTS"

_KINDS = ("crash", "fail", "delay", "corrupt-cache",
          "worker-kill", "daemon-crash", "torn-journal", "disk-full")

#: Set in pool workers (see ``parallel._init_worker``): decides whether a
#: ``crash`` clause hard-exits the process or raises :class:`InjectedCrash`.
_IN_WORKER = False


class FaultSpecError(ValueError):
    """Malformed ``REPRO_FAULTS`` spec."""


class InjectedFault(RuntimeError):
    """Raised by a ``fail`` clause inside a cell attempt."""


class InjectedCrash(InjectedFault):
    """In-process stand-in for a ``crash`` clause (serial path only)."""


@dataclass(frozen=True)
class FaultClause:
    """One parsed clause of the fault spec."""

    kind: str
    cell: int | None = None
    p: float | None = None
    times: int = 1
    ms: int = 50
    cache_kind: str | None = None
    seed: int = 0
    at: str | None = None

    def render(self) -> str:
        bits = [self.kind]
        if self.cell is not None:
            bits.append(f"cell={self.cell}")
        if self.p is not None:
            bits.append(f"p={self.p:g}")
        if self.times != 1:
            bits.append(f"times={self.times}")
        if self.ms != 50:
            bits.append(f"ms={self.ms}")
        if self.cache_kind is not None:
            bits.append(f"kind={self.cache_kind}")
        if self.seed:
            bits.append(f"seed={self.seed}")
        if self.at is not None:
            bits.append(f"at={self.at}")
        return ":".join(bits)


def parse_faults(spec: str) -> tuple[FaultClause, ...]:
    """Parse a fault spec string into clauses (empty spec → no clauses)."""
    clauses = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        bits = part.split(":")
        kind = bits[0].strip()
        if kind not in _KINDS:
            raise FaultSpecError(
                f"unknown fault kind {kind!r} (known: {', '.join(_KINDS)})")
        kwargs: dict = {}
        for bit in bits[1:]:
            name, eq, value = bit.partition("=")
            name = name.strip()
            value = value.strip()
            if not eq or not name or not value:
                raise FaultSpecError(f"malformed parameter {bit!r} in {part!r}")
            try:
                if name == "cell":
                    kwargs["cell"] = int(value)
                elif name == "p":
                    kwargs["p"] = float(value)
                    if not 0.0 <= kwargs["p"] <= 1.0:
                        raise FaultSpecError(f"p={value} outside [0, 1]")
                elif name == "times":
                    kwargs["times"] = int(value)
                elif name == "ms":
                    kwargs["ms"] = int(value)
                elif name == "kind":
                    kwargs["cache_kind"] = value
                elif name == "seed":
                    kwargs["seed"] = int(value)
                elif name == "at":
                    kwargs["at"] = value
                else:
                    raise FaultSpecError(
                        f"unknown parameter {name!r} in {part!r}")
            except ValueError as exc:
                if isinstance(exc, FaultSpecError):
                    raise
                raise FaultSpecError(
                    f"bad value for {name!r} in {part!r}: {value!r}") from exc
        clauses.append(FaultClause(kind, **kwargs))
    return tuple(clauses)


def render_faults(clauses: tuple[FaultClause, ...]) -> str:
    """Inverse of :func:`parse_faults`: canonical spec string."""
    return ",".join(c.render() for c in clauses)


_PLAN_CACHE: dict[str, tuple[FaultClause, ...]] = {}


def active_faults() -> tuple[FaultClause, ...]:
    """The clauses of the current ``$REPRO_FAULTS`` value (parsed once
    per distinct value, so tests can flip the variable freely)."""
    spec = os.environ.get(FAULTS_ENV, "")
    if not spec:
        return ()
    plan = _PLAN_CACHE.get(spec)
    if plan is None:
        plan = _PLAN_CACHE[spec] = parse_faults(spec)
    return plan


def mark_worker() -> None:
    """Flag this process as a pool worker (crash clauses hard-exit)."""
    global _IN_WORKER
    _IN_WORKER = True


def _decide(seed: int, label: str, ident: str, p: float) -> bool:
    """Seeded, order-independent probability decision: the same
    (seed, label, ident) always lands the same side of ``p``."""
    digest = hashlib.sha256(f"{seed}|{label}|{ident}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64 < p


def _matches(clause: FaultClause, index: int, attempt: int) -> bool:
    if clause.times and attempt > clause.times:
        return False
    if clause.cell is not None:
        return index == clause.cell
    if clause.p is not None:
        return _decide(clause.seed, clause.kind, f"cell:{index}:{attempt}",
                       clause.p)
    return True


#: Clause kinds applied at the cell-attempt site (everything else has
#: its own dedicated injection point).
_CELL_KINDS = frozenset(("crash", "fail", "delay"))


def inject_cell_faults(index: int, attempt: int) -> None:
    """Apply matching cell-site clauses; called once per cell attempt,
    before the attempt's real work."""
    for clause in active_faults():
        if clause.kind not in _CELL_KINDS or not _matches(clause, index,
                                                          attempt):
            continue
        if clause.kind == "delay":
            time.sleep(clause.ms / 1000.0)
        elif clause.kind == "fail":
            raise InjectedFault(
                f"injected fault at cell {index} attempt {attempt}")
        elif clause.kind == "crash":
            if _IN_WORKER:
                os._exit(13)
            raise InjectedCrash(
                f"injected crash at cell {index} attempt {attempt}")


# -- server-side sites (repro serve) ----------------------------------------

#: Per-process injection counters for the server-side clauses, keyed by
#: the clause's canonical rendering.  ``times=N`` means "inject the
#: first N times *this process* reaches a matching site"; a restarted
#: daemon starts a fresh count (chaos harnesses restart the daemon with
#: the clause cleared to observe the recovery path).
_PROCESS_HITS: dict[str, int] = {}


def _spend(clause: FaultClause) -> bool:
    """Whether this clause still has injections left in this process;
    charges one on success."""
    key = clause.render()
    hits = _PROCESS_HITS.get(key, 0)
    if clause.times and hits >= clause.times:
        return False
    _PROCESS_HITS[key] = hits + 1
    return True


def _matches_job(clause: FaultClause, job_id: str, attempt: int) -> bool:
    if clause.times and attempt > clause.times:
        return False
    if clause.p is not None:
        return _decide(clause.seed, clause.kind, f"job:{job_id}:{attempt}",
                       clause.p)
    return True


def inject_job_faults(job_id: str, attempt: int) -> None:
    """Fleet-worker site: applied before a serve job's real work.
    ``attempt`` is the job's submission count (tracked by the
    supervisor, so it survives worker deaths)."""
    for clause in active_faults():
        if clause.kind != "worker-kill":
            continue
        if not _matches_job(clause, job_id, attempt):
            continue
        if _IN_WORKER:
            os._exit(13)
        raise InjectedCrash(
            f"injected worker-kill at job {job_id[:12]} attempt {attempt}")


def maybe_daemon_crash(transition: str, job_id: str = "") -> None:
    """Daemon site: called *after* a job state transition is journaled.
    A matching ``daemon-crash`` clause hard-exits the process, leaving
    the journal as the only record of progress."""
    for clause in active_faults():
        if clause.kind != "daemon-crash":
            continue
        if clause.at is not None and clause.at != transition:
            continue
        if clause.p is not None and not _decide(
                clause.seed, "daemon-crash", f"{transition}:{job_id}",
                clause.p):
            continue
        if _spend(clause):
            os._exit(17)


def torn_journal_cut(transition: str, nbytes: int) -> int | None:
    """Journal-append site: a matching ``torn-journal`` clause returns
    how many bytes of the record to actually write (about half, never
    the whole line) — the caller writes that prefix, flushes, and
    hard-exits, simulating a crash mid-append."""
    for clause in active_faults():
        if clause.kind != "torn-journal":
            continue
        if clause.at is not None and clause.at != transition:
            continue
        if clause.p is not None and not _decide(
                clause.seed, "torn-journal", transition, clause.p):
            continue
        if _spend(clause):
            return max(1, nbytes // 2)
    return None


def maybe_disk_full(kind: str, key: str) -> None:
    """Cache-write site: a matching ``disk-full`` clause makes the store
    fail with ``ENOSPC`` (counted per process, so retries can succeed)."""
    for clause in active_faults():
        if clause.kind != "disk-full":
            continue
        if clause.cache_kind is not None and clause.cache_kind != kind:
            continue
        if clause.p is not None and not _decide(clause.seed, "disk-full",
                                                key, clause.p):
            continue
        if _spend(clause):
            raise OSError(errno.ENOSPC,
                          f"injected disk-full writing {kind}/{key[:12]}")


def corrupt_cache_bytes(kind: str, key: str, data: bytes) -> bytes:
    """Possibly garble a cache entry about to be written (no-op unless a
    matching ``corrupt-cache`` clause is active).  Decisions are keyed on
    the entry key, so a given entry is corrupted consistently."""
    for clause in active_faults():
        if clause.kind != "corrupt-cache":
            continue
        if clause.cache_kind is not None and clause.cache_kind != kind:
            continue
        p = 1.0 if clause.p is None else clause.p
        if _decide(clause.seed, "corrupt-cache", key, p):
            return data[: len(data) // 2] + b"\x00injected-corruption"
    return data
