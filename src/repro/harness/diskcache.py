"""Persistent artifact cache under ``~/.cache/repro``.

Stores the three expensive products of the evaluation pipeline —
compiled :class:`~repro.core.spear_binary.SpearBinary` bundles (inside
:class:`~repro.harness.runner.WorkloadArtifacts`), functional traces and
:class:`~repro.pipeline.stats.PipelineResult`\\ s — so a rerun of any
figure or table pays nothing for work an earlier run already did, even
across processes (the parallel engine's workers share this cache).

Entries are keyed by a content hash over everything that determines the
value: workload name, instruction scale, slicer configuration, machine
configuration and a cache schema version.  Changing any input (or bumping
:data:`SCHEMA_VERSION` when the simulator's behaviour changes) therefore
invalidates cleanly — stale entries are simply never looked up again.

Robustness: entries are written atomically (tempfile + ``os.replace``) and
any unreadable entry — truncated, corrupt, wrong pickle version — is
treated as a miss and deleted, never an error.  ``*.tmp`` files a killed
writer left behind are swept at startup once they are older than
:attr:`DiskCache.TMP_MAX_AGE` (younger ones may belong to a live writer).
The sweep walks the whole cache tree, so only the parent process runs it
— pool workers construct their cache view with ``sweep=False``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from . import faults
from .faults import corrupt_cache_bytes

#: Bump whenever a change to the compiler, functional simulator or timing
#: model alters what cached artifacts/results would contain.
#: 2: PipelineResult gained ``timeline``, PipelineStats ``decode_pe_busy``,
#: memory snapshots the ``fills`` timeliness section.
SCHEMA_VERSION = 2

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def parse_bytes(text: str) -> int:
    """Parse a human byte budget: ``"500"``, ``"64K"``, ``"1.5M"``,
    ``"2G"`` (powers of 1024, case-insensitive, optional ``B``)."""
    s = text.strip().upper().removesuffix("B")
    scale = 1
    for suffix, factor in (("K", 1 << 10), ("M", 1 << 20), ("G", 1 << 30)):
        if s.endswith(suffix):
            s = s[: -1]
            scale = factor
            break
    try:
        value = float(s)
    except ValueError:
        raise ValueError(f"unparseable byte budget {text!r}") from None
    if value < 0:
        raise ValueError(f"negative byte budget {text!r}")
    return int(value * scale)


def content_key(payload: dict) -> str:
    """Stable hex digest of a JSON-serializable key payload."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class CacheCounters:
    """Per-kind accounting, surfaced by ``repro bench``."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0     # corrupt/unreadable entries recovered as misses
    sweeps: int = 0     # stale *.tmp files removed at startup
    evictions: int = 0  # entries removed by the LRU byte-budget GC

    def snapshot(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "errors": self.errors,
                "sweeps": self.sweeps, "evictions": self.evictions}


class DiskCache:
    """Content-addressed pickle store with per-kind hit/miss counters.

    ``kind`` namespaces the store (``"artifacts"``, ``"results"``,
    ``"traces"``) so the same key payload can back different value types.
    """

    #: Seconds a ``*.tmp`` file must be old before the startup sweep
    #: removes it — a younger one may belong to a live concurrent writer.
    TMP_MAX_AGE = 3600.0

    __slots__ = ("root", "schema_version", "counters", "tmp_max_age")

    def __init__(self, root: str | Path | None = None, *,
                 schema_version: int = SCHEMA_VERSION,
                 tmp_max_age: float | None = None, sweep: bool = True):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.schema_version = schema_version
        self.counters: dict[str, CacheCounters] = {}
        self.tmp_max_age = (self.TMP_MAX_AGE if tmp_max_age is None
                            else tmp_max_age)
        if sweep:
            self._sweep_stale_tmp()

    # -- key/path plumbing -------------------------------------------------

    def _counter(self, kind: str) -> CacheCounters:
        c = self.counters.get(kind)
        if c is None:
            c = self.counters[kind] = CacheCounters()
        return c

    def key_for(self, kind: str, payload: dict) -> str:
        return content_key({"schema": self.schema_version,
                            "kind": kind, **payload})

    def path_for(self, kind: str, key: str) -> Path:
        return self.root / kind / key[:2] / f"{key}.pkl"

    def _sweep_stale_tmp(self) -> None:
        """Remove ``*.tmp`` files a killed writer left behind.  Atomic
        writes rename their tempfile away on success, so anything old
        enough to be past ``tmp_max_age`` is an orphan."""
        if not self.root.is_dir():
            return
        cutoff = time.time() - self.tmp_max_age
        for tmp in self.root.rglob("*.tmp"):
            try:
                if tmp.stat().st_mtime > cutoff:
                    continue
                tmp.unlink()
            except OSError:
                continue
            parts = tmp.relative_to(self.root).parts
            kind = parts[0] if len(parts) > 1 else "(root)"
            self._counter(kind).sweeps += 1

    # -- operations --------------------------------------------------------

    def get(self, kind: str, payload: dict):
        """Load the cached value, or ``None`` on miss.

        A corrupt or truncated entry is removed and reported as a miss —
        the caller rebuilds and overwrites it.
        """
        return self._load(kind, self.path_for(kind, self.key_for(kind,
                                                                 payload)))

    def get_by_key(self, kind: str, key: str):
        """Load an entry addressed directly by its content key.

        The parallel engine's spill/reference protocol lands here: a
        worker ships only ``(kind, key)`` over IPC and the parent
        resolves the heavy payload from disk.  Same miss semantics as
        :meth:`get` — corrupt entries are deleted and report ``None``.
        """
        return self._load(kind, self.path_for(kind, key))

    def _load(self, kind: str, path: Path):
        """Shared read path of :meth:`get`/:meth:`get_by_key`.

        Two distinct miss flavours: an entry that *vanished* between the
        existence check and the open (a concurrent GC eviction or a
        ``clear()``) is an ordinary miss — every reader must treat that
        race as absence, never corruption; an entry that opened but
        would not unpickle is corrupt, counted as an error and deleted.
        """
        counter = self._counter(kind)
        if not path.is_file():
            counter.misses += 1
            return None
        try:
            with path.open("rb") as fh:
                value = pickle.load(fh)
        except FileNotFoundError:
            # Evicted between is_file() and open(): a plain miss.
            counter.misses += 1
            return None
        except Exception:
            counter.errors += 1
            counter.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        counter.hits += 1
        return value

    def entry_size(self, kind: str, key: str) -> int | None:
        """On-disk size in bytes of one entry, or ``None`` if absent.

        ``OSError`` (including a ``FileNotFoundError`` racing a
        concurrent eviction) reports as absence, mirroring the
        miss-not-error contract of :meth:`_load` — lets the journal
        record how heavy a spilled payload is without ever inlining it.
        """
        try:
            return self.path_for(kind, key).stat().st_size
        except OSError:
            return None

    def put(self, kind: str, payload: dict, value) -> None:
        """Store atomically; concurrent writers of the same key are safe
        (last ``os.replace`` wins with identical content)."""
        key = self.key_for(kind, payload)
        path = self.path_for(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        data = pickle.dumps(value, pickle.HIGHEST_PROTOCOL)
        # No-ops unless the matching fault is injected ($REPRO_FAULTS).
        faults.maybe_disk_full(kind, key)
        data = corrupt_cache_bytes(kind, key, data)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._counter(kind).stores += 1

    # -- lifecycle: size accounting + GC -----------------------------------

    def iter_entries(self):
        """Yield ``(kind, key, size_bytes, mtime)`` for every entry on
        disk.  An entry that vanishes mid-walk (concurrent eviction) is
        simply not yielded — the same race-is-absence contract as the
        readers."""
        if not self.root.is_dir():
            return
        for path in self.root.rglob("*.pkl"):
            parts = path.relative_to(self.root).parts
            if len(parts) < 2:
                continue
            try:
                st = path.stat()
            except OSError:
                continue
            yield parts[0], path.stem, st.st_size, st.st_mtime

    def size_stats(self) -> dict:
        """Per-kind on-disk accounting: ``{kind: {entries, bytes}}``
        plus a ``total`` row — what ``repro cache stats`` prints and
        what the GC budget is measured against."""
        kinds: dict[str, dict] = {}
        total_entries = total_bytes = 0
        for kind, _key, size, _mtime in self.iter_entries():
            row = kinds.setdefault(kind, {"entries": 0, "bytes": 0})
            row["entries"] += 1
            row["bytes"] += size
            total_entries += 1
            total_bytes += size
        out = {kind: kinds[kind] for kind in sorted(kinds)}
        out["total"] = {"entries": total_entries, "bytes": total_bytes}
        return out

    def gc(self, budget_bytes: int, *,
           protect: frozenset | set = frozenset()) -> dict:
        """Evict least-recently-used entries until the cache fits
        ``budget_bytes``.

        Eviction order is oldest mtime first (ties broken by address,
        so two GC passes over the same tree make identical decisions).
        ``protect`` is a set of ``"kind/key"`` addresses that are never
        evicted regardless of budget pressure — the serve daemon passes
        the result keys of its live jobs, so a running client can always
        resolve what it was promised.  Returns an accounting report.
        """
        entries = sorted(self.iter_entries(),
                         key=lambda e: (e[3], e[0], e[1]))
        total = sum(e[2] for e in entries)
        report = {"budget": budget_bytes, "examined": len(entries),
                  "removed": 0, "freed_bytes": 0, "protected_kept": 0,
                  "kept_entries": 0, "kept_bytes": 0}
        excess = total - budget_bytes
        for kind, key, size, _mtime in entries:
            if excess <= 0:
                break
            if f"{kind}/{key}" in protect:
                report["protected_kept"] += 1
                continue
            try:
                self.path_for(kind, key).unlink()
            except OSError:
                continue   # already evicted by a concurrent pass
            self._counter(kind).evictions += 1
            report["removed"] += 1
            report["freed_bytes"] += size
            excess -= size
        report["kept_entries"] = report["examined"] - report["removed"]
        report["kept_bytes"] = total - report["freed_bytes"]
        return report

    # -- reporting ---------------------------------------------------------

    def stats(self) -> dict:
        return {kind: c.snapshot() for kind, c in sorted(self.counters.items())}

    def clear(self) -> int:
        """Delete every entry under the cache root; returns files removed."""
        removed = 0
        if not self.root.exists():
            return 0
        for pattern in ("*.pkl", "*.tmp"):
            removed += self._unlink_all(pattern)
        return removed

    def _unlink_all(self, pattern: str) -> int:
        removed = 0
        for path in self.root.rglob(pattern):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
