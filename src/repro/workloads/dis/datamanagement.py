"""``dm`` — DIS Data Management analog.

The DIS data-management benchmark exercises database index operations:
hashing keys, probing buckets, following overflow chains.  Our kernel
hashes a key stream into a large bucket table, loads the bucket header
(random access — the delinquent load) and follows one overflow hop for a
biased minority of probes.

Published character: IPB 4.92 (very branchy, short loop bodies), branch
hit ratio 0.8907; small SPEAR gains (1.01x from the longer IFQ).
"""

from __future__ import annotations

import numpy as np

from ...isa.builder import ProgramBuilder
from ..base import PaperFacts, Workload, register

_BUCKETS = 1 << 13          # 8K buckets x 8 B = 64 KiB (mostly L2-resident)
_KEYS = 1 << 12
_PROBES = 10000
_P_OVERFLOW = 0.11


@register
class DataManagement(Workload):
    name = "dm"
    suite = "dis"
    paper = PaperFacts(branch_hit_ratio=0.8907, ipb=4.92, expectation="gain",
                       notes="short branchy probe loop")
    eval_instructions = 60_000
    profile_instructions = 40_000
    mem_bytes = 16 << 20

    def build(self, b: ProgramBuilder, rng: np.random.Generator,
              variant: str) -> None:
        keys = rng.integers(0, 1 << 30, size=_KEYS).astype(np.int64)
        # Bucket payloads carry the overflow decision in their low bit.
        buckets = rng.integers(0, _BUCKETS, size=_BUCKETS).astype(np.int64) << 1
        overflow = self.biased_bits(_BUCKETS, _P_OVERFLOW, rng)
        buckets |= overflow
        keys_base = b.alloc(_KEYS, init=keys)
        bkt_base = b.alloc(_BUCKETS, init=buckets)

        b.li("r20", keys_base)
        b.li("r21", bkt_base)
        b.li("r22", _BUCKETS - 1)
        b.li("r23", _KEYS - 1)
        b.li("r9", 0)                         # found counter
        b.li("r3", _PROBES)
        with b.loop_down("r3"):
            b.and_("r4", "r3", "r23")
            b.slli("r4", "r4", 3)
            b.add("r4", "r4", "r20")
            b.lw("r5", "r4", 0)               # key (hot stream)
            # hash: multiplicative + mask
            b.li("r6", 0x9E3779B1)
            b.mul("r7", "r5", "r6")
            b.srai("r7", "r7", 11)
            b.and_("r7", "r7", "r22")
            b.slli("r8", "r7", 3)
            b.add("r8", "r8", "r21")
            b.lw("r10", "r8", 0)              # bucket header (delinquent)
            b.andi("r11", "r10", 1)
            done = b.label()
            b.beq("r11", "r0", done)          # ~89% no overflow
            # overflow hop: header's upper bits name the next bucket
            b.srai("r12", "r10", 1)
            b.and_("r12", "r12", "r22")
            b.slli("r13", "r12", 3)
            b.add("r13", "r13", "r21")
            b.lw("r14", "r13", 0)             # overflow bucket
            b.add("r9", "r9", "r14")
            b.place(done)
            b.add("r9", "r9", "r10")
