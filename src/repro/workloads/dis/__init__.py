"""Atlantic Aerospace Data-Intensive Systems benchmark analogs."""

from . import datamanagement, fft, raytracing  # noqa: F401
