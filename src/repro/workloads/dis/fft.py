"""``fft`` — DIS Fast Fourier Transform analog.

A decimation-in-time butterfly pass: each element pair is gathered through
a *bit-reversed* index.  Computing the bit-reversed address takes a long
serial chain of shift/mask/or steps — which is exactly why the paper
reports fft as a SPEAR failure case: "the p-threads contain a large number
of instructions (1,129) which may slow the execution of the p-thread".

Our bit-reversal is a genuine 16-bit reversal computed with an unrolled
shift-mask cascade, so the backward slice of the gather includes the whole
cascade: the p-thread is as slow as the main thread's own address
computation and pre-execution buys little while stealing decode slots and
memory ports.
"""

from __future__ import annotations

import numpy as np

from ...isa.builder import ProgramBuilder
from ..base import PaperFacts, Workload, register

_LOGN = 12
_N = 1 << _LOGN             # 4K complex points x 2 words = 64 KiB
_BUTTERFLIES = 4200


@register
class FFT(Workload):
    name = "fft"
    suite = "dis"
    paper = PaperFacts(branch_hit_ratio=0.9893, ipb=10.32, expectation="loss",
                       notes="oversized p-thread slices")
    eval_instructions = 80_000
    profile_instructions = 50_000
    mem_bytes = 16 << 20

    def _emit_bit_reverse(self, b: ProgramBuilder, src: str, dst: str) -> None:
        """16-bit bit reversal of ``src`` into ``dst``: a serial cascade of
        shift/mask/or stages — the deliberately heavy address slice."""
        # Stage masks for the classic swap cascade.
        stages = [(1, 0x5555), (2, 0x3333), (4, 0x0F0F), (8, 0x00FF)]
        b.mov(dst, src)
        for shift, mask in stages:
            b.andi("r26", dst, mask)
            b.slli("r26", "r26", shift)
            b.srli("r27", dst, shift)
            b.andi("r27", "r27", mask)
            b.or_(dst, "r26", "r27")

    def build(self, b: ProgramBuilder, rng: np.random.Generator,
              variant: str) -> None:
        data = rng.standard_normal(2 * _N)
        data_base = b.alloc(2 * _N, init=data, dtype=np.float64)
        twiddle = rng.standard_normal(2 * 1024)
        tw_base = b.alloc(2 * 1024, init=twiddle, dtype=np.float64)

        b.li("r20", data_base)
        b.li("r21", tw_base)
        b.li("r22", _N - 1)
        b.li("r10", int(rng.integers(0, _N)))      # walking index
        b.li("r23", 2533)                           # odd stride (co-prime)
        b.li("r3", _BUTTERFLIES)
        with b.loop_down("r3"):
            # Next index: mix-and-bit-reverse of the previous index.  The
            # whole cascade is loop-carried, so the p-thread's slice is as
            # long — and as serial — as the main thread's own address
            # computation: pre-execution cannot get ahead (the paper's
            # oversized-slice pathology).
            b.add("r10", "r10", "r23")
            b.and_("r10", "r10", "r22")
            self._emit_bit_reverse(b, "r10", "r10")
            b.srli("r11", "r10", 16 - _LOGN)       # scale to table size
            b.and_("r10", "r11", "r22")
            b.xori("r11", "r10", 1)                # butterfly partner
            b.slli("r12", "r10", 4)                # complex stride 16 B
            b.add("r12", "r12", "r20")
            b.slli("r13", "r11", 4)
            b.add("r13", "r13", "r20")
            b.flw("f1", "r12", 0)                  # a.re
            b.flw("f2", "r12", 8)                  # a.im
            b.flw("f3", "r13", 0)                  # b.re (delinquent)
            b.flw("f4", "r13", 8)                  # b.im
            b.andi("r14", "r10", 1023)
            b.slli("r14", "r14", 4)
            b.add("r14", "r14", "r21")
            b.flw("f5", "r14", 0)                  # w.re
            b.flw("f6", "r14", 8)                  # w.im
            # butterfly: t = w*b; a' = a + t; b' = a - t
            b.fmul("f7", "f3", "f5")
            b.fmul("f8", "f4", "f6")
            b.fsub("f7", "f7", "f8")               # t.re
            b.fmul("f9", "f3", "f6")
            b.fmul("f10", "f4", "f5")
            b.fadd("f9", "f9", "f10")              # t.im
            b.fadd("f11", "f1", "f7")
            b.fsub("f12", "f1", "f7")
            b.fadd("f13", "f2", "f9")
            b.fsub("f14", "f2", "f9")
            b.fsw("f11", "r12", 0)
            b.fsw("f13", "r12", 8)
            b.fsw("f12", "r13", 0)
            b.fsw("f14", "r13", 8)
