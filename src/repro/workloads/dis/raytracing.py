"""``ray`` — DIS Ray Tracing analog.

Ray-object intersection: for each ray, gather a candidate object from a
large scene array (irregular access via an index buffer — the delinquent
load), then run a floating-point intersection test (dot products, a
discriminant, a square root on the hit path).

Published character: branch hit ratio 0.956, IPB 7.21, modest SPEAR gain;
the FP latency partially masks memory latency.
"""

from __future__ import annotations

import numpy as np

from ...isa.builder import ProgramBuilder
from ..base import PaperFacts, Workload, register

_OBJECTS = 1 << 12          # 4K objects x 4 words = 128 KiB
_OBJ_WORDS = 4              # cx, cy, cz, r^2 as floats
_RAYS = 4500
_P_HIT = 0.10


@register
class RayTracing(Workload):
    name = "ray"
    suite = "dis"
    paper = PaperFacts(branch_hit_ratio=0.956, ipb=7.21, expectation="gain",
                       notes="FP latency masks memory latency")
    eval_instructions = 70_000
    profile_instructions = 45_000
    mem_bytes = 16 << 20

    def build(self, b: ProgramBuilder, rng: np.random.Generator,
              variant: str) -> None:
        # Scene: object records; discriminant sign is controlled via r^2.
        scene = rng.standard_normal(_OBJECTS * _OBJ_WORDS)
        r2 = np.abs(scene[3::_OBJ_WORDS]) * 0.01
        hit = rng.random(_OBJECTS) < _P_HIT
        r2[hit] += 10.0      # big radius => discriminant positive => hit
        scene[3::_OBJ_WORDS] = r2
        idx = rng.integers(0, _OBJECTS, size=_RAYS).astype(np.int64)
        scene_base = b.alloc(len(scene), init=scene, dtype=np.float64)
        idx_base = b.alloc(_RAYS, init=idx)

        b.li("r20", scene_base)
        b.li("r21", idx_base)
        # Ray direction (unit-ish vector) in f10..f12.
        b.li("r4", 3); b.cvtif("f10", "r4")
        b.li("r4", 5); b.cvtif("f11", "r4")
        b.li("r4", 7); b.cvtif("f12", "r4")
        b.li("r9", 0)                         # hit counter
        b.li("r3", _RAYS)
        with b.loop_down("r3"):
            b.slli("r5", "r3", 3)
            b.add("r5", "r5", "r21")
            b.lw("r6", "r5", -8)              # object index (stream)
            b.slli("r7", "r6", 5)             # x 4 words x 8 B
            b.add("r7", "r7", "r20")
            b.flw("f1", "r7", 0)              # cx (delinquent gather)
            b.flw("f2", "r7", 8)              # cy
            b.flw("f3", "r7", 16)             # cz
            b.flw("f4", "r7", 24)             # r^2
            b.fmul("f5", "f1", "f10")         # b = c . d
            b.fmul("f6", "f2", "f11")
            b.fadd("f5", "f5", "f6")
            b.fmul("f6", "f3", "f12")
            b.fadd("f5", "f5", "f6")
            b.fmul("f7", "f1", "f1")          # |c|^2
            b.fmul("f8", "f2", "f2")
            b.fadd("f7", "f7", "f8")
            b.fmul("f8", "f3", "f3")
            b.fadd("f7", "f7", "f8")
            b.fsub("f7", "f7", "f4")          # |c|^2 - r^2
            b.fmul("f8", "f5", "f5")
            b.fsub("f8", "f8", "f7")          # discriminant
            b.li("r10", 0); b.cvtif("f9", "r10")
            miss = b.label()
            b.flt("r11", "f8", "f9")
            b.bne("r11", "r0", miss)          # ~90% miss -> predictable-ish
            b.fabs("f8", "f8")
            b.fsqrt("f13", "f8")              # hit path: distance
            b.addi("r9", "r9", 1)
            b.place(miss)
