"""``ll4`` — Lawrence Livermore Loop 4 (banded linear equations).

This is the paper's Figure 1 working example: the innermost loop loads
``y[j]`` with a non-unit stride and accumulates ``xz += y[j] * x[k]``.
The stride defeats the small cache blocks, making the ``y[j]`` load the
delinquent load of the walk-through.

Not part of the 15-benchmark evaluation — it backs the
``examples/ll4_walkthrough.py`` script that reproduces Figure 1's
d-load/backward-slice/p-thread decomposition.
"""

from __future__ import annotations

import numpy as np

from ..isa.builder import ProgramBuilder
from .base import PaperFacts, Workload, register

_N = 1 << 16                # y vector: 512 KiB
_STRIDE = 5                 # words between consecutive y[j] accesses
_OUTER = 900
_INNER = 24


@register
class LL4(Workload):
    name = "ll4"
    suite = "example"
    paper = PaperFacts(branch_hit_ratio=0.99, ipb=8.0, expectation="gain",
                       notes="Figure 1 walk-through kernel")
    eval_instructions = 60_000
    profile_instructions = 40_000
    mem_bytes = 8 << 20

    def build(self, b: ProgramBuilder, rng: np.random.Generator,
              variant: str) -> None:
        y = rng.standard_normal(_N)
        x = rng.standard_normal(2 * _INNER)
        y_base = b.alloc(_N, init=y, dtype=np.float64)
        x_base = b.alloc(len(x), init=x, dtype=np.float64)

        b.li("r20", y_base)
        b.li("r21", x_base)
        b.li("r22", (_N - _INNER * _STRIDE - 8) * 8)
        b.li("r10", 0)                       # j0 byte offset, walks y
        b.li("r3", _OUTER)
        with b.loop_down("r3"):
            b.li("r8", 0); b.cvtif("f9", "r8")   # xz accumulator
            b.mov("r4", "r10")               # j byte offset
            b.mov("r5", "r21")               # &x[k]
            b.li("r2", _INNER)
            with b.loop_counted("r1", "r2"):
                b.add("r6", "r4", "r20")
                b.flw("f1", "r6", 0)         # y[j]  <- the delinquent load
                b.flw("f2", "r5", 0)         # x[k]  (hot)
                b.fmul("f3", "f1", "f2")
                b.fadd("f9", "f9", "f3")     # xz += y[j] * x[k]
                b.addi("r4", "r4", _STRIDE * 8)
                b.addi("r5", "r5", 8)
            # advance the band, wrapping within y
            b.addi("r10", "r10", _INNER * _STRIDE * 8 + 24)
            wrap = b.label()
            b.blt("r10", "r22", wrap)
            b.li("r10", 0)
            b.place(wrap)

    def spec_of(self):
        """IR port: strided fp loads of ``y[j]`` feeding a
        multiply-accumulate — the Figure 1 delinquent-load structure at
        generator scale."""
        from ..fuzz.generator import KernelSpec
        body = (("alu", "addi", 0, 0, 0, _STRIDE),  # j += stride
                ("fload", 1, 0),           # y[j]  <- the delinquent load
                ("alu", "addi", 2, 2, 0, 1),        # k++
                ("fload", 3, 2),           # x[k]  (hot)
                ("fp", "fmul", 4, 1, 3),
                ("fp", "fadd", 5, 5, 4))   # xz += y[j] * x[k]
        return KernelSpec(mem_words=4096, p_taken=0.5,
                          init=(0,) * 8, finit=(0.0,) * 6,
                          loops=((190, body),))
