"""Fuzz-found kernels promoted to permanent workloads.

The differential fuzzing campaign (``repro fuzz run``, seed 0, 1000
programs — see docs/fuzzing.md) surfaced kernels with the strongest
SPEAR interactions in the generated corpus, plus the campaign's first
confirmed simulator bug.  The most instructive ones are frozen here as
first-class workloads so figures, benchmarks and regression runs can
exercise them by name without regenerating the corpus.

Each class pins the exact :class:`~repro.fuzz.generator.KernelSpec`
JSON captured at promotion time: later generator changes can never
silently alter these kernels.  Array *data* is seeded by the workload
name like every other workload, so the measured character below is a
property of the registered name, verified by ``tests/fuzz``.
"""

from __future__ import annotations

from ..fuzz.generator import SpecWorkload, spec_from_json
from .base import PaperFacts, register

# fuzz:v1:0:928 — the campaign's strongest speedup (1.90x there, 1.59x
# under this name): a chase-fed gather behind a biased hammock, exactly
# the delinquent-load-under-branch shape SPEAR targets.
_GAIN = ('{"finit": [1e+300, 0.5, 0.933932, 3.141592653589793, -6.973616,'
         ' 14.639136], "init": [2, -2473882175226545805,'
         ' 4611686018427387907, 9223372036854775807, 2531658499410545548,'
         ' 4172307112570329268, 7, -2254895947073212259], "loops": [[51,'
         ' [["chase", 2, 4, 1], ["hammock", "blt", 4, 0, [["gather", 0, 2,'
         ' 4], ["chase", 5, 2, 1]], []], ["stream", 1, 4], ["chase", 0, 6,'
         ' 1]]]], "mem_words": 4096, "p_taken": 0.6832, "version": 1}')

# fuzz:v1:0:39 — a single hot loop mixing a pointer chase with rem and
# shift chains (1.85x in the campaign, 1.83x under this name).
_MIX = ('{"finit": [0.5, 3.141592653589793, 3.609508, 0.5, -1.0,'
        ' 3.141592653589793], "init": [-13, 1087751592253214807, 1, -13,'
        ' -47017921329884914, 9007199254740993, 3826583928327130613,'
        ' -2147483648], "loops": [[146, [["chase", 7, 7, 1], ["alu",'
        ' "srai", 4, 5, 3, 62], ["stream", 0, 4], ["alu", "and", 4, 0, 3,'
        ' -14], ["alu", "srai", 1, 6, 5, 18], ["div", "rem", 6, 2, 6]]]],'
        ' "mem_words": 16384, "p_taken": 0.4434, "version": 1}')

# fuzz:v1:0:315 — the campaign's only regression (0.93x): an L1-resident
# 128-word footprint where p-thread overhead cannot pay for itself.
_DRAG = ('{"finit": [3.141592653589793, 0.197183, -1e+300, -0.858533,'
         ' 1e-300, 1e+300], "init": [-9223372036854775808,'
         ' 9007199254740993, 3629111972113685414, 9007199254740993,'
         ' -9223372036854775808, -13, -13, 4611686018427387907], "loops":'
         ' [[1, [["hammock", "entropy", 1, 4, [["stream", 1, 4], ["cvtif",'
         ' 3, 5]], [["store", 0, 7]]], ["div", "div", 2, 0, 2], ["stream",'
         ' 2, 1], ["alu", "sll", 1, 4, 7, -37], ["fp", "fmax", 3, 3, 3],'
         ' ["bstore", 4, 2], ["alu", "or", 3, 1, 7, -2], ["alu", "slli",'
         ' 5, 2, 6, 37]]], [71, [["div", "rem", 7, 3, 0], ["alu", "andi",'
         ' 4, 6, 5, 159], ["chase", 3, 5, 1], ["gather", 5, 5, 4]]]],'
         ' "mem_words": 128, "p_taken": 0.4706, "version": 1}')

# fuzz:v1:0:791 shrunk — the campaign's first confirmed simulator bug:
# srl by a zero shift amount left an unsigned >= 2^63 in the register
# file, which a following store overflowed (see
# tests/regress/srl_zero_shift_unwrapped.json).
_SRL = ('{"finit": [0.0, 0.0, 0.0, 0.0, 0.0, 0.0], "init": [0, 0, 0, 0,'
        ' 0, 0, 0, 0], "loops": [[3, [["store", 7, 4], ["alu", "srl", 7,'
        ' 3, 6, -17], ["gather", 3, 1, 4]]]], "mem_words": 8, "p_taken":'
        ' 0.5231, "version": 1}')


class _Promoted(SpecWorkload):
    """Base for promoted kernels: spec frozen in ``_SPEC``."""

    _SPEC = ""

    def __init__(self):
        super().__init__(spec_from_json(self._SPEC), self.name)


@register
class FuzzGain(_Promoted):
    name = "fzgain"
    paper = PaperFacts(branch_hit_ratio=0.68, ipb=9.0, expectation="gain",
                       notes="fuzz-found: chase-fed gather under a hammock")
    _SPEC = _GAIN


@register
class FuzzMix(_Promoted):
    name = "fzmix"
    paper = PaperFacts(branch_hit_ratio=1.0, ipb=14.0, expectation="gain",
                       notes="fuzz-found: chase + rem/shift single loop")
    _SPEC = _MIX


@register
class FuzzDrag(_Promoted):
    name = "fzdrag"
    paper = PaperFacts(branch_hit_ratio=0.53, ipb=9.0, expectation="loss",
                       notes="fuzz-found: L1-resident, overhead-bound")
    _SPEC = _DRAG


@register
class FuzzSrl(_Promoted):
    name = "fzsrl"
    paper = PaperFacts(branch_hit_ratio=1.0, ipb=12.0, expectation="flat",
                       notes="fuzz-found: srl-by-zero simulator bug kernel")
    _SPEC = _SRL
