"""``bzip2`` — SPEC CINT2000 256.bzip2 analog.

The Burrows-Wheeler front end's bucket sort: stream a large block,
increment a hot 256-entry counter table, then scatter positions through a
read-modify-write on a megabyte-scale pointer array at data-dependent
offsets (the delinquent access pattern).

Published character: branch hit ratio 0.9425, IPB 6.24, small SPEAR gain
(1.04x from the longer IFQ).
"""

from __future__ import annotations

import numpy as np

from ...isa.builder import ProgramBuilder
from ..base import PaperFacts, Workload, register

_BLOCK = 1 << 16            # 64K symbols
_PTRS = 1 << 12             # 4K-entry pointer array = 32 KiB (hot)
_SYMBOLS = 8000


@register
class Bzip2(Workload):
    name = "bzip2"
    suite = "spec"
    paper = PaperFacts(branch_hit_ratio=0.9425, ipb=6.24, expectation="gain")
    eval_instructions = 70_000
    profile_instructions = 45_000
    mem_bytes = 16 << 20

    def build(self, b: ProgramBuilder, rng: np.random.Generator,
              variant: str) -> None:
        block = rng.integers(0, 256, size=_BLOCK).astype(np.int64)
        # Scatter targets: block value scaled into the pointer array with a
        # per-symbol perturbation, precomputed as data.
        scatter = rng.integers(0, _PTRS, size=_BLOCK).astype(np.int64)
        ptrs = rng.integers(0, 1 << 20, size=_PTRS).astype(np.int64)
        block_base = b.alloc(_BLOCK, init=block)
        scat_base = b.alloc(_BLOCK, init=scatter)
        ptr_base = b.alloc(_PTRS, init=ptrs)
        count_base = b.alloc(256, init=np.zeros(256, dtype=np.int64))

        b.li("r20", block_base)
        b.li("r21", scat_base)
        b.li("r22", ptr_base)
        b.li("r23", count_base)
        b.mov("r4", "r20")                    # block cursor
        b.mov("r5", "r21")                    # scatter cursor
        b.li("r9", 0)
        b.li("r3", _SYMBOLS)
        with b.loop_down("r3"):
            b.lw("r6", "r4", 0)               # symbol (stream)
            b.slli("r7", "r6", 3)
            b.add("r7", "r7", "r23")
            b.lw("r8", "r7", 0)               # count[symbol] (hot, hits)
            b.addi("r8", "r8", 1)
            b.sw("r8", "r7", 0)
            b.lw("r10", "r5", 0)              # scatter target (stream)
            b.slli("r11", "r10", 3)
            b.add("r11", "r11", "r22")
            b.lw("r12", "r11", 0)             # ptr[target] (delinquent RMW)
            b.xor("r12", "r12", "r6")
            b.sw("r12", "r11", 0)             # write back
            # BWT rank mixing: the sort's comparison arithmetic, hot ALU
            b.slli("r13", "r6", 7)
            b.xor("r13", "r13", "r12")
            b.srai("r14", "r13", 3)
            b.add("r13", "r13", "r14")
            b.mul("r15", "r6", "r8")
            b.xor("r13", "r13", "r15")
            b.srai("r16", "r15", 5)
            b.add("r9", "r9", "r16")
            rare = b.label()
            b.bne("r8", "r9", rare)           # count milestone: rarely equal
            b.addi("r9", "r9", 16)
            b.place(rare)
            b.addi("r4", "r4", 8)
            b.addi("r5", "r5", 8)
