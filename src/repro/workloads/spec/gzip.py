"""``gzip`` — SPEC CINT2000 164.gzip analog.

LZ77 deflation: hash the next three input "bytes", look up the hash head
table, then compare the candidate match against the current position at
several offsets with early-exit branches.  The comparison is unrolled, so
*many distinct static loads* miss — mirroring the paper's diagnosis that
"gzip contains too many d-loads (49.2M) which causes an excessive amount
of triggering operations" and makes gzip one of the four benchmarks that
degrade slightly under SPEAR.

Published character: branch hit ratio 0.8986, IPB 6.08, slight loss.
"""

from __future__ import annotations

import numpy as np

from ...isa.builder import ProgramBuilder
from ..base import PaperFacts, Workload, register

_WINDOW = 1 << 14           # 16K words = 128 KiB history window
_HASHES = 1 << 12           # 4K-entry head table (hot)
_POSITIONS = 6800
_P_LONG_MATCH = 0.35        # moderately unpredictable match-extend branches


@register
class Gzip(Workload):
    name = "gzip"
    suite = "spec"
    paper = PaperFacts(branch_hit_ratio=0.8986, ipb=6.08, expectation="loss",
                       notes="too many d-loads, excessive triggering")
    eval_instructions = 70_000
    profile_instructions = 45_000
    mem_bytes = 16 << 20

    def build(self, b: ProgramBuilder, rng: np.random.Generator,
              variant: str) -> None:
        window = rng.integers(0, 256, size=_WINDOW).astype(np.int64)
        heads = rng.integers(0, _WINDOW - 64, size=_HASHES).astype(np.int64)
        win_base = b.alloc(_WINDOW, init=window)
        head_base = b.alloc(_HASHES, init=heads)

        b.li("r20", win_base)
        b.li("r21", head_base)
        b.li("r22", _HASHES - 1)
        b.li("r23", _WINDOW - 64)
        b.li("r10", 0)                        # current position
        b.li("r24", 6151)                     # position stride (odd)
        b.li("r9", 0)                         # emitted-symbol checksum
        b.li("r3", _POSITIONS)
        with b.loop_down("r3"):
            # position advance with wrap
            b.add("r10", "r10", "r24")
            wrap = b.label()
            b.blt("r10", "r23", wrap)
            b.sub("r10", "r10", "r23")
            b.place(wrap)
            b.slli("r4", "r10", 3)
            b.add("r4", "r4", "r20")
            b.lw("r5", "r4", 0)               # input word 0 (stream-ish)
            b.lw("r6", "r4", 8)               # input word 1
            # hash and head lookup
            b.slli("r7", "r5", 5)
            b.xor("r7", "r7", "r6")
            b.and_("r7", "r7", "r22")
            b.slli("r8", "r7", 3)
            b.add("r8", "r8", "r21")
            b.lw("r11", "r8", 0)              # head[h]: match pos (d-load 1)
            b.slli("r12", "r11", 3)
            b.add("r12", "r12", "r20")
            # unrolled match comparison: 4 distinct candidate loads, each a
            # separate static d-load with an early-exit branch
            stop = b.label()
            b.lw("r13", "r12", 0)             # candidate word 0 (d-load 2)
            b.bne("r13", "r5", stop)
            b.lw("r14", "r12", 8)             # candidate word 1 (d-load 3)
            b.bne("r14", "r6", stop)
            b.lw("r15", "r12", 16)            # candidate word 2 (d-load 4)
            b.lw("r16", "r4", 16)
            b.bne("r15", "r16", stop)
            b.lw("r17", "r12", 24)            # candidate word 3 (d-load 5)
            b.addi("r9", "r9", 4)             # long match emitted
            b.add("r9", "r9", "r17")
            b.place(stop)
            b.sw("r10", "r8", 0)              # update hash head
