"""``art`` — SPEC CFP2000 179.art analog.

art (Adaptive Resonance Theory image recognition) spends its time in F1
layer passes: long streaming dot products between input vectors and a
weight matrix far larger than the L2 cache.  Every cache block is touched
exactly once per pass, so pre-execution prefetches with near-perfect
accuracy — art posts the paper's best cache-miss reduction (-38.8%) and a
1.21x gain from the longer IFQ.

Published character: branch hit ratio 0.9504, IPB 6.43.
"""

from __future__ import annotations

import numpy as np

from ...isa.builder import ProgramBuilder
from ..base import PaperFacts, Workload, register

_NEURONS = 56
_INPUTS = 1 << 10           # weights: 56 x 1024 x 8 B = 448 KiB > L2
_PASSES = 1


@register
class Art(Workload):
    name = "art"
    suite = "spec"
    paper = PaperFacts(branch_hit_ratio=0.9504, ipb=6.43, expectation="gain",
                       notes="best miss reduction (-38.8%)")
    eval_instructions = 70_000
    profile_instructions = 45_000
    mem_bytes = 16 << 20

    def build(self, b: ProgramBuilder, rng: np.random.Generator,
              variant: str) -> None:
        weights = rng.standard_normal(_NEURONS * _INPUTS)
        inputs = rng.standard_normal(_INPUTS)
        w_base = b.alloc(len(weights), init=weights, dtype=np.float64)
        in_base = b.alloc(_INPUTS, init=inputs, dtype=np.float64)
        out_base = b.alloc(_NEURONS)

        b.li("r20", w_base)
        b.li("r21", in_base)
        b.li("r22", out_base)
        b.mov("r4", "r20")                     # weight cursor (streams 448K)
        b.li("r2", _NEURONS)
        with b.loop_counted("r1", "r2"):       # neuron loop
            b.mov("r5", "r21")                 # input cursor
            b.li("r6", 0); b.cvtif("f9", "r6")  # activation = 0.0
            b.li("r7", _INPUTS // 4)
            with b.loop_down("r7"):            # unrolled x4 dot product
                b.flw("f1", "r4", 0)           # w (streaming, delinquent)
                b.flw("f2", "r5", 0)           # in (hot)
                b.fmul("f3", "f1", "f2")
                b.fadd("f9", "f9", "f3")
                b.flw("f4", "r4", 8)
                b.flw("f5", "r5", 8)
                b.fmul("f6", "f4", "f5")
                b.fadd("f9", "f9", "f6")
                b.flw("f10", "r4", 16)
                b.flw("f11", "r5", 16)
                b.fmul("f12", "f10", "f11")
                b.fadd("f9", "f9", "f12")
                b.flw("f13", "r4", 24)
                b.flw("f14", "r5", 24)
                b.fmul("f15", "f13", "f14")
                b.fadd("f9", "f9", "f15")
                b.addi("r4", "r4", 32)
                b.addi("r5", "r5", 32)
            b.slli("r8", "r1", 3)
            b.add("r8", "r8", "r22")
            b.fsw("f9", "r8", 0)               # activation out
