"""``equake`` — SPEC CFP2000 183.equake analog.

equake's hot kernel is ``smvp``: a sparse matrix-vector product over the
earthquake mesh — stream the nonzero coefficients, gather the displacement
vector through the column index, multiply-accumulate in floating point.

The paper singles out the two CFP2000 codes: "these applications contain
long latency floating-point operations which mask the long memory latency
operations.  In fact, decoupled memory accesses are particularly
beneficial when faced with long latency floating-point operations."

Published character: branch hit ratio 0.9018, IPB 6.18, solid SPEAR gain
(1.15x from the longer IFQ).
"""

from __future__ import annotations

import numpy as np

from ...isa.builder import ProgramBuilder
from ..base import PaperFacts, Workload, register

_NNZ = 1 << 16              # 64K nonzeros: values 512 KiB + cols 512 KiB
_VDIM = 1 << 16             # 64K-entry vector = 512 KiB (gather target)
_ROWS = 750
_NNZ_PER_ROW = 18


@register
class Equake(Workload):
    name = "equake"
    suite = "spec"
    paper = PaperFacts(branch_hit_ratio=0.9018, ipb=6.18, expectation="gain",
                       notes="FP latency masks memory latency")
    eval_instructions = 70_000
    profile_instructions = 45_000
    mem_bytes = 16 << 20

    def build(self, b: ProgramBuilder, rng: np.random.Generator,
              variant: str) -> None:
        vals = rng.standard_normal(_NNZ)
        cols = rng.integers(0, _VDIM, size=_NNZ).astype(np.int64)
        v = rng.standard_normal(_VDIM)
        # Row lengths vary a little so the inner-loop exit branch is not
        # perfectly predictable (published hit ratio 0.90).
        row_len = rng.integers(_NNZ_PER_ROW - 8, _NNZ_PER_ROW + 8,
                               size=_ROWS).astype(np.int64)
        vals_base = b.alloc(_NNZ, init=vals, dtype=np.float64)
        cols_base = b.alloc(_NNZ, init=cols)
        v_base = b.alloc(_VDIM, init=v, dtype=np.float64)
        len_base = b.alloc(_ROWS, init=row_len)
        out_base = b.alloc(_ROWS)

        b.li("r20", vals_base)
        b.li("r21", cols_base)
        b.li("r22", v_base)
        b.li("r23", len_base)
        b.li("r24", out_base)
        b.mov("r4", "r20")                    # value cursor
        b.mov("r5", "r21")                    # column cursor
        b.li("r2", _ROWS)
        with b.loop_counted("r1", "r2"):
            b.slli("r6", "r1", 3)
            b.add("r6", "r6", "r23")
            b.lw("r7", "r6", 0)               # this row's nnz count
            b.li("r8", 0); b.cvtif("f9", "r8")  # row accumulator = 0.0
            with b.loop_down("r7"):
                b.lw("r10", "r5", 0)          # col[k] (stream)
                b.slli("r11", "r10", 3)
                b.add("r11", "r11", "r22")
                b.flw("f1", "r11", 0)         # v[col[k]] (delinquent gather)
                b.flw("f2", "r4", 0)          # A[k] (stream)
                b.fmul("f3", "f1", "f2")
                b.fadd("f9", "f9", "f3")      # long FP dependence chain
                b.addi("r4", "r4", 8)
                b.addi("r5", "r5", 8)
            b.slli("r12", "r1", 3)
            b.add("r12", "r12", "r24")
            b.fsw("f9", "r12", 0)             # out[row]
