"""SPEC2000 benchmark analogs."""

from . import art, bzip2, equake, gzip, mcf, vpr  # noqa: F401
