"""``mcf`` — SPEC CINT2000 181.mcf analog.

mcf's network-simplex pricing loop streams a multi-megabyte arc array and
dereferences each arc's tail/head node pointers — two data-dependent
gathers per arc into a node array that also misses.  It is the most
memory-bound program in CINT2000 and the paper's best case: +87.6% with
SPEAR.

The gathers are independent across arcs, so SPEAR converts IFQ lookahead
into memory-level parallelism almost perfectly; the backward slices are a
handful of instructions each.

Published character: branch hit ratio 0.9098, IPB 3.45 (branchiest of the
suite), largest SPEAR speedup.
"""

from __future__ import annotations

import numpy as np

from ...isa.builder import ProgramBuilder
from ..base import PaperFacts, Workload, register

_ARCS = 1 << 16             # 64K arcs x 4 words = 2 MiB (streamed)
_ARC_WORDS = 4              # tail, head, cost, flow
_NODES = 1 << 18            # 256K nodes x 2 words = 4 MiB (gathered)
_NODE_WORDS = 2             # potential, depth
_SWEEP = 7000
_P_NEGATIVE = 0.10          # fraction of arcs priced into the basket
_STATUS = 1 << 11           # 2K status words = 16 KiB (stays cache resident)
_BASIS = 1 << 18            # 256K-entry basis structure = 2 MiB (gathered)


@register
class MCF(Workload):
    name = "mcf"
    suite = "spec"
    paper = PaperFacts(branch_hit_ratio=0.9098, ipb=3.45, expectation="gain",
                       notes="best case: +87.6% in the paper")
    eval_instructions = 70_000
    profile_instructions = 45_000
    mem_bytes = 48 << 20

    def build(self, b: ProgramBuilder, rng: np.random.Generator,
              variant: str) -> None:
        arcs = np.zeros(_ARCS * _ARC_WORDS, dtype=np.int64)
        arcs[0::_ARC_WORDS] = rng.integers(0, _NODES, size=_ARCS)  # tail
        arcs[1::_ARC_WORDS] = rng.integers(0, _NODES, size=_ARCS)  # head
        arcs[2::_ARC_WORDS] = rng.integers(1, 1000, size=_ARCS)    # cost
        nodes = np.zeros(_NODES * _NODE_WORDS, dtype=np.int64)
        nodes[0::_NODE_WORDS] = rng.integers(0, 500, size=_NODES)   # potential
        # Arc status flags: a small, cache-resident array consulted by the
        # basis-membership test (mcf checks arc->ident before pricing).
        # It drives the biased branch from *cheap* data, so mispredicts
        # resolve quickly and fetch runs far ahead of the ROB.
        status = self.biased_bits(_STATUS, _P_NEGATIVE, rng)
        basis = rng.integers(0, 1 << 20, size=_BASIS).astype(np.int64)
        arcs_base = b.alloc(len(arcs), init=arcs)
        nodes_base = b.alloc(len(nodes), init=nodes)
        status_base = b.alloc(_STATUS, init=status)
        basis_base = b.alloc(_BASIS, init=basis)

        b.li("r20", arcs_base)
        b.li("r21", nodes_base)
        b.li("r22", status_base)
        b.li("r23", _STATUS - 1)
        b.li("r25", _BASIS - 1)
        b.li("r26", basis_base)
        b.mov("r4", "r20")                     # arc cursor
        b.li("r9", 0)                          # basket checksum
        b.li("r3", _SWEEP)
        with b.loop_down("r3"):
            b.lw("r5", "r4", 0)                # arc->tail   (stream)
            b.lw("r6", "r4", 8)                # arc->head   (stream)
            b.lw("r7", "r4", 16)               # arc->cost   (stream)
            b.slli("r10", "r5", 4)             # x NODE_WORDS x 8
            b.add("r10", "r10", "r21")
            b.lw("r11", "r10", 0)              # tail->potential (delinquent)
            b.slli("r12", "r6", 4)
            b.add("r12", "r12", "r21")
            b.lw("r13", "r12", 0)              # head->potential (delinquent)
            b.sub("r14", "r11", "r13")
            b.add("r14", "r14", "r7")          # reduced cost
            # basis-tree lookup: a third independent gather (mcf walks the
            # spanning-tree structure arrays during pricing)
            b.add("r17", "r5", "r6")
            b.and_("r17", "r17", "r25")
            b.slli("r18", "r17", 3)
            b.add("r18", "r18", "r26")
            b.lw("r19", "r18", 0)              # basis entry (delinquent)
            b.add("r9", "r9", "r19")
            # basis-membership test: cheap, hot status word
            b.and_("r15", "r3", "r23")
            b.slli("r15", "r15", 3)
            b.add("r15", "r15", "r22")
            b.lw("r16", "r15", 0)              # status flag (hot)
            in_basis = b.label()
            b.bne("r16", "r0", in_basis)       # ~90% not taken... taken?
            b.add("r9", "r9", "r14")           # price out: into the basket
            b.place(in_basis)
            b.addi("r4", "r4", _ARC_WORDS * 8)
