"""``vpr`` — SPEC CINT2000 175.vpr (place & route) analog.

Simulated-annealing placement: draw a pair of cells from a move stream,
gather both cells' coordinates from a large placement array, evaluate the
bounding-box cost delta, and accept with a data-dependent, biased branch.

Published character: branch hit ratio 0.9005, IPB 5.92, moderate SPEAR
gain.
"""

from __future__ import annotations

import numpy as np

from ...isa.builder import ProgramBuilder
from ..base import PaperFacts, Workload, register

_CELLS = 1 << 16            # 64K cells x 2 words = 1 MiB
_CELL_WORDS = 2             # x, y
_MOVES = 6500
_P_ACCEPT = 0.10


@register
class VPR(Workload):
    name = "vpr"
    suite = "spec"
    paper = PaperFacts(branch_hit_ratio=0.9005, ipb=5.92, expectation="gain")
    eval_instructions = 70_000
    profile_instructions = 45_000
    mem_bytes = 16 << 20

    def build(self, b: ProgramBuilder, rng: np.random.Generator,
              variant: str) -> None:
        place = rng.integers(0, 4096, size=_CELLS * _CELL_WORDS).astype(np.int64)
        moves = rng.integers(0, _CELLS, size=2 * _MOVES).astype(np.int64)
        # Bias the acceptance: encode the annealing decision in the move
        # stream's low bit so ~10% of moves are accepted.
        accept = self.biased_bits(2 * _MOVES, _P_ACCEPT, rng)
        moves = (moves << 1) | accept
        place_base = b.alloc(len(place), init=place)
        moves_base = b.alloc(len(moves), init=moves)

        b.li("r20", place_base)
        b.li("r21", moves_base)
        b.li("r22", _CELLS - 1)
        b.mov("r4", "r21")                    # move cursor
        b.li("r9", 0)                         # total cost delta
        b.li("r3", _MOVES)
        with b.loop_down("r3"):
            b.lw("r5", "r4", 0)               # move: cell a (stream)
            b.lw("r6", "r4", 8)               # move: cell b (stream)
            b.andi("r15", "r5", 1)            # acceptance bit
            b.srai("r5", "r5", 1)
            b.and_("r5", "r5", "r22")
            b.srai("r6", "r6", 1)
            b.and_("r6", "r6", "r22")
            b.slli("r7", "r5", 4)             # x CELL_WORDS x 8
            b.add("r7", "r7", "r20")
            b.lw("r10", "r7", 0)              # a.x (delinquent gather)
            b.lw("r11", "r7", 8)              # a.y
            b.slli("r8", "r6", 4)
            b.add("r8", "r8", "r20")
            b.lw("r12", "r8", 0)              # b.x (delinquent gather)
            b.lw("r13", "r8", 8)              # b.y
            b.sub("r14", "r10", "r12")        # bbox delta
            b.sub("r16", "r11", "r13")
            b.add("r14", "r14", "r16")
            reject = b.label()
            b.beq("r15", "r0", reject)        # ~90% rejected
            b.sw("r12", "r7", 0)              # swap accepted: exchange x
            b.sw("r10", "r8", 0)
            b.add("r9", "r9", "r14")
            b.place(reject)
            b.addi("r4", "r4", 16)
