"""The 15-benchmark evaluation suite plus the LL4 walk-through kernel.

Importing this package registers every workload; use
:func:`get_workload` / :func:`all_workload_names` to access them.
"""

from . import ll4  # noqa: F401
from . import dis, spec, stressmark  # noqa: F401
from . import fuzzed  # noqa: F401  (fuzz-found kernels, see docs/fuzzing.md)
from .base import (PaperFacts, Workload, all_workload_names, get_workload,
                   register, suite_of)

__all__ = ["PaperFacts", "Workload", "all_workload_names", "get_workload",
           "register", "suite_of"]
