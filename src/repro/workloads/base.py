"""Workload infrastructure.

Each benchmark of the paper's Table 1 is reproduced as a SPISA kernel with
the same *memory-access character* as the original (DESIGN.md §2): pointer
chasing, indexed gather, streaming, hash probing, butterfly access, and so
on.  A workload builds two program variants with identical text segments:

* ``train`` — the profiling input (different seed/data), and
* ``eval``  — the evaluation input,

mirroring the paper's separation of profiling and simulation data sets.

Determinism: all randomness flows from explicit per-variant seeds; building
the same variant twice yields byte-identical programs.
"""

from __future__ import annotations

import zlib
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..isa.builder import ProgramBuilder
from ..isa.program import Program


@dataclass(frozen=True)
class PaperFacts:
    """Published per-benchmark characteristics we aim to approximate
    (Table 3 and the Figure 6 discussion)."""

    branch_hit_ratio: float
    ipb: float
    expectation: str          # "gain", "flat", "loss"
    notes: str = ""


class Workload(ABC):
    """One benchmark analog."""

    #: short name used everywhere (matches the paper's abbreviation)
    name: str = ""
    #: "stressmark", "dis" or "spec"
    suite: str = ""
    #: published behaviour targeted by this analog
    paper: PaperFacts = PaperFacts(1.0, 10.0, "gain")
    #: dynamic instruction budget for evaluation traces
    eval_instructions: int = 60_000
    #: dynamic instruction budget for profiling traces
    profile_instructions: int = 40_000
    #: instructions skipped (functionally warmed) before measurement —
    #: the analog of the paper's Table 1 "skipped instructions"
    warmup_instructions: int = 40_000

    _SEEDS = {"train": 20040419, "eval": 19770107}

    def program(self, variant: str = "eval") -> Program:
        """Build the program for one input variant."""
        if variant not in self._SEEDS:
            raise ValueError(f"unknown variant {variant!r}")
        # crc32, not hash(): str hashing is randomized per process
        # (PYTHONHASHSEED), which would make parallel workers and cached
        # artifacts disagree with a serial run.
        rng = np.random.default_rng(
            self._SEEDS[variant] ^ zlib.crc32(self.name.encode()))
        builder = ProgramBuilder(self.name, mem_bytes=self.mem_bytes)
        self.build(builder, rng, variant)
        builder.halt()
        return builder.build()

    #: data memory size for this workload
    mem_bytes: int = 16 << 20

    @abstractmethod
    def build(self, b: ProgramBuilder, rng: np.random.Generator,
              variant: str) -> None:
        """Emit the kernel into ``b``.  Must not emit the final halt."""

    def spec_of(self):
        """Export this workload's kernel as a fuzz ``KernelSpec``, or
        None when it has no IR port.

        The export is a *behavioural* port, not a byte transcription:
        the spec grammar's fixed materialization (shared scratch
        registers, masked addressing, counted loops) cannot reproduce a
        hand-built program's exact text, so exporters scale the kernel
        into the generator's dynamic budget while preserving its memory
        character and SPEAR expectation (gain/flat).  What *is* exact:
        the spec JSON round-trips byte-identically, and the
        materialized program is byte-deterministic — both pinned in
        ``tests/workloads/test_spec_exports.py``.  These specs seed the
        coverage-guided campaign's mutation arms
        (:mod:`repro.fuzz.schedule`).
        """
        return None

    # -- shared data-generation helpers ------------------------------------

    @staticmethod
    def random_cycle(n: int, rng: np.random.Generator) -> np.ndarray:
        """A single-cycle permutation: ``next[i]`` visits all n nodes.

        This is the canonical pointer-chase working set — following
        ``i = next[i]`` touches every element in random order with no
        locality.
        """
        perm = rng.permutation(n)
        nxt = np.empty(n, dtype=np.int64)
        nxt[perm[:-1]] = perm[1:]
        nxt[perm[-1]] = perm[0]
        return nxt

    @staticmethod
    def biased_bits(n: int, p_taken: float, rng: np.random.Generator) -> np.ndarray:
        """0/1 array with P(1) = p_taken — drives data-dependent branches
        whose bimodal hit ratio approximates max(p, 1-p)."""
        return (rng.random(n) < p_taken).astype(np.int64)


_REGISTRY: dict[str, type[Workload]] = {}


def register(cls: type[Workload]) -> type[Workload]:
    """Class decorator adding a workload to the global registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate workload name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def get_workload(name: str) -> Workload:
    """Instantiate a registered workload by name.

    ``fuzz:...`` names are virtual: they encode a generated kernel's
    full identity (see :func:`repro.fuzz.generator.encode_name`) and are
    rebuilt from the string instead of the registry, so parallel workers
    and cache keys need nothing beyond the name itself.
    """
    if name.startswith("fuzz:"):
        from ..fuzz.generator import fuzz_workload_from_name
        return fuzz_workload_from_name(name)
    if name.startswith("fuzzmut:"):
        # Mutated hand-built spec: ``fuzzmut:v1:<seed>:<index>:<base>``
        # fully encodes the mutation identity (the base workload's
        # exported spec plus a seeded mutation walk).
        from ..fuzz.schedule import mut_workload_from_name
        return mut_workload_from_name(name)
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(_REGISTRY)}") from None


def all_workload_names() -> list[str]:
    """All registered names, in the paper's Table 1 order where possible."""
    order = ["pointer", "update", "nbh", "tr", "matrix", "field",
             "dm", "ray", "fft", "gzip", "mcf", "vpr", "bzip2",
             "equake", "art"]
    known = [n for n in order if n in _REGISTRY]
    extras = sorted(set(_REGISTRY) - set(order))
    return known + extras


def suite_of(name: str) -> str:
    return _REGISTRY[name].suite
