"""``tr`` — Atlantic Stressmark Transitive Closure analog.

Floyd-Warshall-style relaxation over a dense distance matrix: the inner
loop streams ``d[i][j]`` and ``d[k][j]``, compares against ``d[i][k] +
d[k][j]`` and conditionally updates.  The update branch depends on loaded
data and is only mildly biased, giving the low published branch hit ratio
(0.8865).

Expected SPEAR behaviour (Figure 6 discussion): *slight degradation* —
"tr does not successfully work with our IFQ-based pre-execution because of
the low branch hit ratio".  Mispredicts keep draining the IFQ below the
trigger threshold, while the marked slice still steals decode slots and
memory ports.
"""

from __future__ import annotations

import numpy as np

from ...isa.builder import ProgramBuilder
from ..base import PaperFacts, Workload, register

_N = 512                    # 512x512 matrix x 8 B = 2 MiB >> L2
_ROUNDS = 30                # (k, i) pair rounds; inner loop over j
_P_UPDATE = 0.12            # relaxation succeeds for ~12% of entries


@register
class TransitiveClosure(Workload):
    name = "tr"
    suite = "stressmark"
    paper = PaperFacts(branch_hit_ratio=0.8865, ipb=22.55, expectation="loss",
                       notes="low branch hit ratio defeats IFQ lookahead")
    eval_instructions = 70_000
    profile_instructions = 45_000
    mem_bytes = 24 << 20

    def build(self, b: ProgramBuilder, rng: np.random.Generator,
              variant: str) -> None:
        n2 = _N * _N
        # Distances arranged so that d[i][k] + d[k][j] < d[i][j] holds for
        # roughly _P_UPDATE of the entries: draw d from a wide range and
        # the candidate sums from a biased one.
        dist = rng.integers(100, 1000, size=n2).astype(np.int64)
        # Pre-scale a quarter of the entries upward so relaxation wins there.
        bump = rng.random(n2) < _P_UPDATE
        dist[bump] += 5000
        dist_base = b.alloc(n2, init=dist)

        b.li("r20", dist_base)
        b.li("r3", _ROUNDS)
        with b.loop_down("r3"):
            # Row selection cycles among a small working set: after the
            # first visits the rows are cache resident, so tr's misses are
            # rare and SPEAR has nothing to win back — only bandwidth and
            # decode slots to lose (the paper's slight-degradation case).
            b.andi("r4", "r3", 3)          # i = round mod 4 (16 KiB, L1-resident)
            b.addi("r6", "r4", 2)          # k = i + 2
            b.li("r7", _N * 8)
            b.mul("r8", "r4", "r7")
            b.add("r8", "r8", "r20")       # &d[i][0]
            b.mul("r10", "r6", "r7")
            b.add("r10", "r10", "r20")     # &d[k][0]
            # d[i][k]
            b.slli("r11", "r6", 3)
            b.add("r12", "r8", "r11")
            b.lw("r13", "r12", 0)          # d[i][k]
            b.li("r2", _N)
            with b.loop_counted("r1", "r2"):
                b.slli("r14", "r1", 3)
                b.add("r15", "r8", "r14")
                b.lw("r16", "r15", 0)      # d[i][j]   (streaming, delinquent)
                b.add("r17", "r10", "r14")
                b.lw("r18", "r17", 0)      # d[k][j]   (streaming)
                b.add("r19", "r13", "r18")  # d[i][k] + d[k][j]
                no_update = b.label()
                b.bge("r19", "r16", no_update)   # data-dependent, ~75/25
                b.sw("r19", "r15", 0)      # relax
                b.place(no_update)
