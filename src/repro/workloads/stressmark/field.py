"""``field`` — Atlantic Stressmark Field analog.

The original scans a large field of words for token sequences.  The access
pattern is purely sequential, so hardware-visible misses are rare (one
compulsory miss per cache block on the first pass, hits afterwards): the
paper states "the cache miss rate is too low to benefit from prefetching"
and Figure 6 shows SPEAR ≈ baseline.

We scan a field that fits comfortably in the L2 repeatedly, so after the
cold first pass the kernel is compute/branch bound.  The SPEAR compiler is
expected to find no delinquent load above threshold — the interesting
property this analog tests is that SPEAR does *no harm* when there is
nothing to prefetch.
"""

from __future__ import annotations

import numpy as np

from ...isa.builder import ProgramBuilder
from ..base import PaperFacts, Workload, register

_FIELD = 1 << 11            # 2K words = 16 KiB (fits in L1 after pass 1)
_PASSES = 20
_TOKEN = 77


@register
class Field(Workload):
    name = "field"
    suite = "stressmark"
    paper = PaperFacts(branch_hit_ratio=0.987, ipb=39.3, expectation="flat",
                       notes="miss rate too low to benefit")
    eval_instructions = 70_000
    profile_instructions = 45_000
    mem_bytes = 8 << 20

    def build(self, b: ProgramBuilder, rng: np.random.Generator,
              variant: str) -> None:
        field = rng.integers(0, 4096, size=_FIELD).astype(np.int64)
        # Sprinkle the token at ~2% of positions.
        hits = rng.random(_FIELD) < 0.02
        field[hits] = _TOKEN
        base = b.alloc(_FIELD, init=field)

        b.li("r20", base)
        b.li("r21", _TOKEN)
        b.li("r9", 0)                       # match count
        b.li("r3", _PASSES)
        with b.loop_down("r3"):
            b.mov("r4", "r20")
            b.li("r2", _FIELD)
            with b.loop_counted("r1", "r2"):
                b.lw("r5", "r4", 0)          # sequential scan
                b.addi("r4", "r4", 8)
                nomatch = b.label()
                b.bne("r5", "r21", nomatch)  # rarely equal -> predictable
                b.addi("r9", "r9", 1)
                b.place(nomatch)
                b.xor("r6", "r5", "r9")      # token statistics filler
                b.srai("r7", "r6", 2)
                b.add("r9", "r9", "r0")

    def spec_of(self):
        """IR port: a cache-resident sequential scan with a rare-token
        branch (p=0.02) and compute filler — the low-miss end of the
        spectrum at generator scale.  The tiny footprint amortizes the
        cold pass, so the L1 miss band stays low; the residual
        compulsory misses still buy SPEAR a small gain, unlike the
        full-size workload whose 20 passes make it exactly flat."""
        from ...fuzz.generator import KernelSpec
        body = (("stream", 0, 1),          # the sequential scan
                ("hammock", "entropy", 0, 1,
                 (("alu", "addi", 2, 2, 0, 1),), ()),   # rare token hit
                ("alu", "xor", 3, 0, 2, 0),
                ("alu", "srai", 4, 3, 0, 2))
        return KernelSpec(mem_words=64, p_taken=0.02,
                          init=(0,) * 8, finit=(0.0,) * 6,
                          loops=((200, body),))