"""``update`` — Atlantic Stressmark Update analog.

Like Pointer, but a *single* serial chain whose nodes are modified as they
are visited (read-modify-write), plus a data-dependent branch taken for a
biased minority of nodes.  The serial dependence means extra IFQ lookahead
cannot be converted into extra memory-level parallelism — matching the
paper's Table 3, where update is one of only two benchmarks that get
*slower* with the longer IFQ (SPEAR-256/SPEAR-128 = 0.94) thanks to its
low branch hit ratio (0.8865).
"""

from __future__ import annotations

import numpy as np

from ...isa.builder import ProgramBuilder
from ..base import PaperFacts, Workload, register

_NODES = 1 << 16          # 64K nodes x 8 B = 512 KiB
_ITERS = 12000
_P_TAKEN = 0.12           # biased data-dependent branch => ~0.88 hit ratio


@register
class Update(Workload):
    name = "update"
    suite = "stressmark"
    paper = PaperFacts(branch_hit_ratio=0.8865, ipb=8.72, expectation="gain",
                       notes="longer IFQ hurts (0.94x)")
    eval_instructions = 60_000
    profile_instructions = 40_000
    mem_bytes = 16 << 20

    def build(self, b: ProgramBuilder, rng: np.random.Generator,
              variant: str) -> None:
        # Pack the branch-bias bit into the node value's bit 1 so the
        # chase value stays a valid next index in bits [63:2]... simpler:
        # keep two arrays: the chain and a payload with biased bits.
        chain = self.random_cycle(_NODES, rng)
        payload = self.biased_bits(_NODES, _P_TAKEN, rng)
        chain_base = b.alloc(_NODES, init=chain)
        pay_base = b.alloc(_NODES, init=payload)
        b.li("r20", chain_base)
        b.li("r21", pay_base)
        b.li("r10", int(rng.integers(0, _NODES)))   # cursor
        b.li("r3", _ITERS)
        b.li("r9", 1)                               # update value
        with b.loop_down("r3"):
            b.slli("r4", "r10", 3)
            b.add("r5", "r4", "r20")
            b.lw("r10", "r5", 0)          # serial hop (delinquent)
            b.add("r6", "r4", "r21")
            b.lw("r7", "r6", 0)           # payload of the *old* node
            b.add("r8", "r7", "r9")
            b.sw("r8", "r6", 0)           # the update (RMW)
            skip = b.label()
            b.beq("r7", "r0", skip)       # biased data-dependent branch
            b.addi("r9", "r9", 1)         # rare path: bump update value
            b.place(skip)

    def spec_of(self):
        """IR port: a single serial chain whose visited nodes are
        read-modify-written, plus the biased data-dependent branch
        (p=0.12) — the no-MLP structure at generator scale."""
        from ...fuzz.generator import KernelSpec
        body = (("chase", 0, 0, 1),        # the serial hop (delinquent)
                ("gather", 1, 0, 1),       # payload of the old node
                ("alu", "add", 2, 2, 1, 0),
                ("store", 2, 0),           # the update (RMW)
                ("hammock", "entropy", 0, 0,
                 (("alu", "addi", 3, 3, 0, 1),), ()))
        return KernelSpec(mem_words=4096, p_taken=_P_TAKEN,
                          init=(0,) * 8, finit=(0.0,) * 6,
                          loops=((110, body),))
