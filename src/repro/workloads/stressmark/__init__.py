"""Atlantic Aerospace Stressmark suite analogs."""

from . import field, matrix, neighborhood, pointer, transitive, update  # noqa: F401
