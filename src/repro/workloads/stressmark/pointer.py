"""``pointer`` — Atlantic Stressmark Pointer analog.

The Stressmark performs discrete *hop sequences*: each sequence starts
from a seed drawn from an index stream, then follows a fixed number of
data-dependent hops through a large table.  Within a sequence the hops are
serially dependent (no prefetcher can beat the chain), but sequences are
independent of each other — exactly the structure that rewards deeper
lookahead: the baseline's ROB covers only a couple of sequences, while
SPEAR's p-thread launches the seed loads and first hops of sequences far
beyond the reorder window.

Published character (Table 3): branch hit ratio 0.979, IPB 7.08; SPEAR
gains and holds up well under long latencies (Figure 9).
"""

from __future__ import annotations

import numpy as np

from ...isa.builder import ProgramBuilder
from ..base import PaperFacts, Workload, register

_NODES = 1 << 17          # 128K-entry hop table = 1 MiB
_HOPS = 4                 # serial hops per sequence
_SEQUENCES = 7000


@register
class Pointer(Workload):
    name = "pointer"
    suite = "stressmark"
    paper = PaperFacts(branch_hit_ratio=0.979, ipb=7.08, expectation="gain",
                       notes="independent hop sequences")
    eval_instructions = 60_000
    profile_instructions = 40_000
    warmup_instructions = 40_000
    mem_bytes = 16 << 20

    def build(self, b: ProgramBuilder, rng: np.random.Generator,
              variant: str) -> None:
        table = self.random_cycle(_NODES, rng)
        seeds = rng.integers(0, _NODES, size=_SEQUENCES).astype(np.int64)
        table_base = b.alloc(_NODES, init=table)
        seeds_base = b.alloc(_SEQUENCES, init=seeds)

        b.li("r20", table_base)
        b.li("r21", seeds_base)
        b.mov("r4", "r21")                 # seed cursor
        b.li("r9", 0)                      # checksum
        b.li("r3", _SEQUENCES)
        with b.loop_down("r3"):
            b.lw("r10", "r4", 0)           # sequence seed (stream)
            for _ in range(_HOPS):         # unrolled serial hop chain
                b.slli("r5", "r10", 3)
                b.add("r5", "r5", "r20")
                b.lw("r10", "r5", 0)       # the hop (delinquent)
            b.add("r9", "r9", "r10")
            b.addi("r4", "r4", 8)

    def spec_of(self):
        """IR port: streamed sequence seeds feeding 4-hop serial chases
        through the cycle table, checksum-folded — the hop-sequence
        structure at generator scale (see ``Workload.spec_of``)."""
        from ...fuzz.generator import KernelSpec
        body = (("stream", 0, 1),          # sequence seed (index stream)
                ("chase", 1, 0, 4),        # 4 serial hops from the seed
                ("alu", "add", 2, 2, 1, 0))  # checksum += last hop
        return KernelSpec(mem_words=4096, p_taken=0.5,
                          init=(0,) * 8, finit=(0.0,) * 6,
                          loops=((120, body),))
