"""``matrix`` — Atlantic Stressmark Matrix analog.

The original solves a sparse linear system by conjugate gradient; the hot
loop is a CSR sparse matrix-vector product: stream the value/column
arrays, gather ``x[col[k]]``.  Branches are loop bounds only — essentially
perfectly predictable (published hit ratio 0.9942).

This benchmark is the paper's best case for the longer IFQ (SPEAR-256 /
SPEAR-128 = 1.45): the gather addresses are independent across elements,
so prefetching converts IFQ lookahead directly into memory-level
parallelism, and the deeper queue doubles the visible window.
"""

from __future__ import annotations

import numpy as np

from ...isa.builder import ProgramBuilder
from ..base import PaperFacts, Workload, register

_ROWS = 260
_NNZ_PER_ROW = 24
_XDIM = 1 << 17             # 128K-entry dense vector = 1 MiB (gather target)


@register
class Matrix(Workload):
    name = "matrix"
    suite = "stressmark"
    paper = PaperFacts(branch_hit_ratio=0.9942, ipb=11.75, expectation="gain",
                       notes="largest IFQ-256 benefit (1.45x over 128)")
    eval_instructions = 70_000
    profile_instructions = 45_000
    mem_bytes = 24 << 20

    def build(self, b: ProgramBuilder, rng: np.random.Generator,
              variant: str) -> None:
        nnz = _ROWS * _NNZ_PER_ROW
        cols = rng.integers(0, _XDIM, size=nnz).astype(np.int64)
        vals = rng.integers(1, 100, size=nnz).astype(np.int64)
        x = rng.integers(1, 100, size=_XDIM).astype(np.int64)
        cols_base = b.alloc(nnz, init=cols)
        vals_base = b.alloc(nnz, init=vals)
        x_base = b.alloc(_XDIM, init=x)
        y_base = b.alloc(_ROWS)

        b.li("r20", cols_base)
        b.li("r21", vals_base)
        b.li("r22", x_base)
        b.li("r23", y_base)
        b.li("r2", _ROWS)
        with b.loop_counted("r1", "r2"):           # row loop
            b.li("r9", 0)                          # row accumulator
            b.li("r5", _NNZ_PER_ROW)
            with b.loop_down("r5"):                # nnz loop
                b.lw("r6", "r20", 0)               # col[k]   (stream)
                b.slli("r7", "r6", 3)
                b.add("r8", "r7", "r22")
                b.lw("r10", "r8", 0)               # x[col[k]] (delinquent gather)
                b.lw("r11", "r21", 0)              # val[k]   (stream)
                b.mul("r12", "r10", "r11")
                b.add("r9", "r9", "r12")
                # CG inner-product bookkeeping: preconditioner scaling and
                # residual update arithmetic (keeps the loop body long, so
                # lookahead is bound by the IFQ depth, not the RUU — the
                # source of matrix's outsized IFQ-256 benefit)
                b.srai("r13", "r12", 7)
                b.add("r14", "r13", "r10")
                b.xor("r15", "r14", "r11")
                b.slli("r16", "r15", 2)
                b.sub("r17", "r16", "r13")
                b.add("r18", "r17", "r9")
                b.srai("r18", "r18", 9)
                b.xor("r9", "r9", "r18")
                b.mul("r19", "r14", "r15")
                b.srai("r19", "r19", 11)
                b.add("r9", "r9", "r19")
                b.addi("r20", "r20", 8)
                b.addi("r21", "r21", 8)
            b.slli("r13", "r1", 3)
            b.add("r14", "r13", "r23")
            b.sw("r9", "r14", 0)                   # y[row]

    def spec_of(self):
        """IR port: CSR SpMV — streamed columns/values, a gathered
        ``x[col]``, a long ALU reduction and the row store; the
        independent-gather MLP structure at generator scale."""
        from ...fuzz.generator import KernelSpec
        body = (("stream", 0, 1),          # col[k]
                ("gather", 1, 0, 2),       # x[col[k]] (delinquent)
                ("stream", 2, 1),          # val[k]
                ("alu", "mul", 3, 1, 2, 0),
                ("alu", "add", 4, 4, 3, 0),
                ("alu", "srai", 5, 3, 0, 7),
                ("alu", "xor", 4, 4, 5, 0),
                ("store", 4, 2))           # y accumulator write-back
        return KernelSpec(mem_words=8192, p_taken=0.5,
                          init=(0,) * 8, finit=(0.0,) * 6,
                          loops=((85, body),))
