"""``nbh`` — Atlantic Stressmark Neighborhood analog.

The original computes gray-level difference statistics between each image
pixel and neighbors at a fixed displacement.  We walk a large 2-D image in
a strided order that defeats the caches (row stride exceeds an L1 way) and
combine each pixel with two displaced neighbors.

Published character: branch hit ratio 0.9958 (essentially perfect), IPB
15.21, solid SPEAR gains (1.06x from the longer IFQ) — address arithmetic
is simple, so slices are tiny and prefetching is timely.
"""

from __future__ import annotations

import numpy as np

from ...isa.builder import ProgramBuilder
from ..base import PaperFacts, Workload, register

_W = 512                   # image width (words)
_H = 384                   # image height -> 512*384*8 = 1.5 MiB
_PIXELS = 8000
_DISP = 7 * _W + 3         # neighbor displacement (paper uses fixed (dx,dy))
_STRIDE = 17 * _W + 11     # visit order: large co-prime stride


@register
class Neighborhood(Workload):
    name = "nbh"
    suite = "stressmark"
    paper = PaperFacts(branch_hit_ratio=0.9958, ipb=15.21, expectation="gain")
    eval_instructions = 70_000
    profile_instructions = 45_000
    mem_bytes = 24 << 20

    def build(self, b: ProgramBuilder, rng: np.random.Generator,
              variant: str) -> None:
        n = _W * _H
        pad = _DISP + 64   # margin so neighbor loads stay in bounds
        image = rng.integers(0, 256, size=n + pad).astype(np.int64)
        img_base = b.alloc(n + pad, init=image)
        b.li("r20", img_base)
        b.li("r10", 0)                      # pixel index
        b.li("r22", n)                      # wrap modulus
        b.li("r23", _STRIDE)
        b.li("r3", _PIXELS)
        b.li("r9", 0)                       # accumulated statistic
        with b.loop_down("r3"):
            b.slli("r4", "r10", 3)
            b.add("r5", "r4", "r20")
            b.lw("r6", "r5", 0)             # center pixel (delinquent)
            b.lw("r7", "r5", _DISP * 8)     # displaced neighbor
            b.lw("r8", "r5", 64 * 8)        # neighbor in a different block
            b.sub("r11", "r6", "r7")
            b.mul("r12", "r11", "r11")      # squared difference
            b.sub("r13", "r6", "r8")
            b.mul("r14", "r13", "r13")
            b.add("r9", "r9", "r12")
            b.add("r9", "r9", "r14")
            # advance with a co-prime stride, wrapping by subtraction
            b.add("r10", "r10", "r23")
            wrap = b.label()
            b.blt("r10", "r22", wrap)
            b.sub("r10", "r10", "r22")
            b.place(wrap)
