"""Functional-unit pools and per-cycle structural-hazard accounting.

The paper's Table 2 machine has 4 integer ALUs + 1 integer MUL/DIV unit,
4 FP ALUs + 1 FP MUL/DIV unit, and 2 memory ports.  In the dedicated-
resource (`sf`) models of Figure 7 the p-thread gets its own identical
pool, "very similar to the Chip Multiprocessor architecture model".

All units are pipelined: a unit accepts one new operation per cycle
regardless of operation latency, so the pool is simply a per-cycle issue
budget per unit kind.
"""

from __future__ import annotations

from ..core.configs import FUConfig
from ..isa.opcodes import OpClass


class FUKind:
    """Indices into the per-cycle availability vector."""

    INT_ALU = 0
    INT_MULDIV = 1
    FP_ALU = 2
    FP_MULDIV = 3
    MEM_PORT = 4
    N_KINDS = 5


#: Operational class -> functional-unit kind.
FU_OF_CLASS: dict[int, int] = {
    int(OpClass.INT_ALU): FUKind.INT_ALU,
    int(OpClass.INT_MUL): FUKind.INT_MULDIV,
    int(OpClass.INT_DIV): FUKind.INT_MULDIV,
    int(OpClass.FP_ALU): FUKind.FP_ALU,
    int(OpClass.FP_MUL): FUKind.FP_MULDIV,
    int(OpClass.FP_DIV): FUKind.FP_MULDIV,
    int(OpClass.LOAD): FUKind.MEM_PORT,
    int(OpClass.STORE): FUKind.MEM_PORT,
    int(OpClass.BRANCH): FUKind.INT_ALU,
    int(OpClass.MISC): FUKind.INT_ALU,
}


class FUPool:
    """One thread-visible set of functional units."""

    __slots__ = ("config", "_capacity", "_avail", "conflicts")

    def __init__(self, config: FUConfig):
        self.config = config
        self._capacity = [config.int_alu, config.int_muldiv, config.fp_alu,
                          config.fp_muldiv, config.mem_ports]
        self._avail = list(self._capacity)
        #: Structural-hazard counters per unit kind (diagnostics).
        self.conflicts = [0] * FUKind.N_KINDS

    def begin_cycle(self) -> None:
        """Refresh per-cycle availability (in place: no per-cycle list)."""
        self._avail[:] = self._capacity

    def take(self, op_class: int) -> bool:
        """Try to claim a unit for this op class this cycle."""
        kind = FU_OF_CLASS[op_class]
        if self._avail[kind] > 0:
            self._avail[kind] -= 1
            return True
        self.conflicts[kind] += 1
        return False

    def available(self, op_class: int) -> int:
        return self._avail[FU_OF_CLASS[op_class]]
