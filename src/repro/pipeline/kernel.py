"""Timing-kernel protocol and backend registry.

The simulator core is split from its cycle-advancement strategy: the
:class:`TimingKernel` protocol names the narrow surface every backend
exposes (``run``, ``step``, ``next_event_horizon``, ``stats_snapshot``),
and :data:`KERNELS` maps backend names to implementations:

``reference``
    :class:`~repro.pipeline.smt.TimingSimulator` — the cycle-by-cycle
    loop, ground truth for every equivalence gate.
``fast-forward``
    :class:`~repro.pipeline.fastforward.FastForwardSimulator` — skips
    provably idle stretches to the next event horizon; byte-identical
    results.

(The batched latency sweep of :mod:`repro.pipeline.sweep` is a *sweep*
strategy layered on these per-run kernels, not a kernel itself, so it is
not registered here.)

Every backend is gated on byte-identical stats, timelines and trace
streams versus ``reference`` — see ``tests/properties/test_backends.py``
— which makes backend choice purely a wall-clock knob.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from .fastforward import FastForwardSimulator
from .smt import TimingSimulator
from .stats import PipelineResult


@runtime_checkable
class TimingKernel(Protocol):
    """What the harness needs from a timing backend."""

    #: registry name of the backend
    backend: str

    def run(self) -> PipelineResult:
        """Run the whole trace and return the result."""

    def step(self) -> bool:
        """Advance one cycle; True while the run is incomplete."""

    def next_event_horizon(self) -> int:
        """Earliest future cycle at which new work can appear."""

    def stats_snapshot(self) -> dict:
        """Current counters as a plain dict (valid mid-run)."""


#: Backend name -> simulator class.
KERNELS: dict[str, type[TimingSimulator]] = {
    TimingSimulator.backend: TimingSimulator,
    FastForwardSimulator.backend: FastForwardSimulator,
}

#: Names accepted wherever a backend knob appears (CLI, runner, cells).
KERNEL_BACKENDS = tuple(KERNELS)

#: The backend used when none is requested.
DEFAULT_BACKEND = TimingSimulator.backend


def resolve_kernel(backend: str | None) -> type[TimingSimulator]:
    """Look up a backend by name (None means the default)."""
    if backend is None:
        backend = DEFAULT_BACKEND
    try:
        return KERNELS[backend]
    except KeyError:
        raise ValueError(
            f"unknown timing-kernel backend {backend!r}; "
            f"known: {', '.join(KERNEL_BACKENDS)}") from None


def make_simulator(backend: str | None, *args, **kwargs) -> TimingSimulator:
    """Construct the requested backend's simulator.

    Positional and keyword arguments are those of
    :class:`~repro.pipeline.smt.TimingSimulator` — backends share its
    constructor, differing only in cycle advancement.
    """
    return resolve_kernel(backend)(*args, **kwargs)
