"""Cycle-level SMT timing model with SPEAR pre-execution hardware.

This is the repository's analog of the paper's modified ``sim-outorder``:
an 8-wide out-of-order pipeline with an IFQ front end, pre-decode (PD
d-load detection + PT indicator marking), the P-thread Extractor, per-
thread RUUs, shared or dedicated functional units, two memory ports and a
bimodal branch predictor.

It is *trace driven*: instruction values come from the committed-path
trace produced by the functional simulator, and the pipeline models timing
only.  DESIGN.md §2 documents why this substitution preserves the paper's
phenomena; §6 lists the modeling decisions (perfect BTB, fetch-stall
mispredict recovery, MSHR-merged fills).

Pre-execution sequencing (paper §3.2):

1. pre-decode sees a d-load enter the IFQ while occupancy ≥ half → trigger;
2. wait until every instruction decoded at trigger time has committed;
3. copy live-in registers, one cycle each;
4. PE extracts marked IFQ entries (≤ issue_width/2 per cycle) from the
   p-thread head pointer, clearing indicators, until the triggering d-load
   has been extracted;
5. extracted instances execute as thread 1 with issue priority, touching
   only the data cache;
6. when the triggering d-load instance completes, the mode ends.
"""

from __future__ import annotations

from collections import deque

from ..branch.predictors import make_predictor
from ..core.configs import MachineConfig, OP_LATENCY
from ..core.pthread import PThreadTable
from ..functional.trace import Trace
from ..memory.hierarchy import MemoryHierarchy
from ..memory.prefetcher import make_prefetcher
from ..observe.events import (COMMIT, COMPLETE, DECODE, EXTRACT, FETCH, FILL,
                              ISSUE, MISPREDICT, MODE, MODE_NAMES, PREFETCH,
                              TraceEvent)
from ..observe.sampler import IntervalSampler
from ..observe.sinks import TraceSink
from .dyninst import DynInstr, MAIN_THREAD, P_THREAD
from .funits import FUPool
from .ifq import IFQSlot, InstructionFetchQueue
from .stats import PipelineResult, PipelineStats

# Pre-execution mode states.
_IDLE, _DRAIN, _COPY, _ACTIVE = range(4)


def trace_flags(trace: Trace, table: PThreadTable
                ) -> tuple[bytearray, bytearray]:
    """Per-entry (marked, d-load) indicator vectors for one trace.

    Computed once per run instead of touching TraceEntry attributes and
    pc sets per fetched instruction; a batched sweep computes them once
    per *sweep* and shares them across its per-latency sims.
    """
    entries = trace.entries
    n = len(entries)
    marked = bytearray(n)
    dloads = bytearray(n)
    marked_pcs = table.marked_pcs
    dload_pcs = table.dload_pcs
    if marked_pcs or dload_pcs:
        for i, e in enumerate(entries):
            pc = e.pc
            if pc in marked_pcs:
                marked[i] = 1
            if pc in dload_pcs:
                dloads[i] = 1
    return marked, dloads


class TimingSimulator:
    """One run of one trace through one machine configuration.

    This class is also the ``reference`` timing kernel: alternative
    cycle-advancement backends (see :mod:`repro.pipeline.kernel`) subclass
    it and hook :meth:`_fast_forward`, but every architectural decision —
    fetch, decode, issue, complete, commit, the SPEAR mode machine —
    lives here, once, so backends can only change *when* cycles are
    processed, never *what* a cycle does.
    """

    # No __slots__ here: one instance exists per run (no allocation win)
    # and tests monkeypatch bound methods on instances.

    #: Timing-kernel backend name (subclasses override).
    backend = "reference"
    #: Whether the run loop consults :meth:`_fast_forward` each cycle.
    _ff = False

    def __init__(self, trace: Trace, config: MachineConfig,
                 table: PThreadTable | None = None,
                 memory: MemoryHierarchy | None = None,
                 warmup: Trace | list | None = None,
                 tracer: TraceSink | None = None,
                 sampler: IntervalSampler | None = None,
                 predictor=None, flags: tuple | None = None,
                 policy=None):
        self.trace = trace
        self.config = config
        #: observability hooks — every emit site checks ``is not None``
        #: first, so an untraced run pays one predictable branch per site.
        self._tracer = tracer
        self._sampler = sampler
        self.table = table if (table is not None and config.spear_enabled) \
            else PThreadTable.empty()
        self.mem = memory or MemoryHierarchy(latencies=config.latencies)
        #: ``predictor`` lets a batched sweep hand several sims one
        #: warmed-then-cloned predictor instead of replaying warmup per
        #: latency point; a caller who passes one also skips ``warmup``.
        self.predictor = predictor if predictor is not None else \
            make_predictor(config.predictor,
                           table_size=config.predictor_table_size,
                           targets={})
        self.prefetcher = make_prefetcher(
            config.prefetcher, block_bytes=self.mem.l1.config.block_bytes,
            degree=config.prefetch_degree)
        self._prefetch_active = config.prefetcher != "none"
        if warmup is not None:
            # The paper's "skipped instructions" (Table 1): replay the
            # warmup prefix through caches and predictor functionally so
            # measurement starts from steady state.
            mem = self.mem
            predictor = self.predictor
            for e in warmup:
                if e.addr >= 0:
                    mem.warm(e.addr, is_write=e.is_store)
                elif e.is_cond:
                    predictor.predict_and_update(e.pc, e.taken)
            mem.finish_warmup()
            predictor.stats = type(predictor.stats)()
        self.stats = PipelineStats()

        # Front end state.
        self.ifq = InstructionFetchQueue(config.ifq_size)
        self._fetch_idx = 0
        self._await_branch_idx = -1   # trace idx of unresolved mispredict
        self._fetch_resume_cycle = 0
        #: reconverge mode: IFQ seq of the unresolved mispredicted branch;
        #: decode may not pass it, and resolution flushes everything younger.
        self._barrier_seq = -1
        #: highest trace index ever extracted (suppresses duplicate
        #: p-thread instances after a wrong-path flush re-fetch).
        self._max_extracted_idx = -1
        #: real entries fetched past the current barrier (reconverge mode).
        self._wrong_path_real = 0

        # Back end state.
        self._main_rob: deque[DynInstr] = deque()
        self._main_ready: list[DynInstr] = []
        self._pt_ready: list[DynInstr] = []
        self._pt_inflight = 0
        self._events: dict[int, list[DynInstr]] = {}
        self._last_writer: dict[int, DynInstr] = {}
        self._store_map: dict[int, DynInstr] = {}
        self._next_seq = 0

        self._fu_main = FUPool(config.fu)
        self._fu_pt = FUPool(config.fu) if config.separate_fu else self._fu_main

        # SPEAR mode state.
        self._mode = _IDLE
        self._trigger_trace_idx = -1
        self._trigger_extracted = False
        self._drain_seq = -1
        self._drain_producers: list[DynInstr] = []
        self._copy_remaining = 0
        self._pe_seq = 0
        self._pt_last_writer: dict[int, DynInstr] = {}

        self._cycle = 0
        self._committed = 0
        #: cumulative per-thread execution counters (indexed MAIN_THREAD /
        #: P_THREAD) feeding the sampler's per-thread series.
        self._completed_by_thread = [0, 0]
        self._issued_by_thread = [0, 0]

        #: ``MachineConfig.trigger_occupancy`` is a derived property; it is
        #: consulted on every fetch group, so compute it once.  Both it and
        #: the chaining shadow below are the *live* operating point: fixed
        #: for the config's lifetime under the fixed policy, mutated at
        #: decision boundaries by an attached phase controller.
        self._trigger_occ = config.trigger_occupancy
        self._chaining = config.chaining
        #: optional in-run trigger-policy controller (adaptive-phase);
        #: ``None`` is the fixed policy and costs one predictable branch
        #: per decision-interval check in the run loop.
        self._policy = policy
        if policy is not None:
            policy.attach(self)

        # Trace-derived vectors, computed once per run instead of touching
        # TraceEntry attributes and pc sets per fetched instruction.
        entries = trace.entries
        self._entries = entries
        if flags is not None:
            # Precomputed (marked, dload) vectors shared across a batched
            # sweep's per-latency sims — one trace walk instead of K.
            self._marked_flags, self._dload_flags = flags
        else:
            self._marked_flags, self._dload_flags = \
                trace_flags(trace, self.table)

    # ------------------------------------------------------------------
    # Top-level loop
    # ------------------------------------------------------------------

    def run(self) -> PipelineResult:
        """Run the whole trace and return the result (TimingKernel API)."""
        self._run_loop(self.config.max_cycles)
        return self._finalize()

    def step(self) -> bool:
        """Advance exactly one cycle (TimingKernel API).

        Returns True while the run is incomplete, so ``while sim.step():
        ...`` drives a run to the same state ``run()`` would reach —
        stats are flushed at every step boundary, which is what makes
        mid-run :meth:`stats_snapshot` meaningful.
        """
        n = len(self._entries)
        if self._committed < n:
            self._run_loop(self._cycle + 1)
        return self._committed < n

    def next_event_horizon(self) -> int:
        """Earliest future cycle at which new work can appear if the
        machine is otherwise idle (TimingKernel API): the next completion
        event, the post-mispredict fetch-redirect cycle, or ``max_cycles``
        when nothing at all is in flight (the deadlock bound)."""
        horizon = self.config.max_cycles
        events = self._events
        if events:
            horizon = min(horizon, min(events))
        if self._await_branch_idx < 0 and self._cycle < self._fetch_resume_cycle:
            horizon = min(horizon, self._fetch_resume_cycle)
        return horizon

    def stats_snapshot(self) -> dict:
        """Current counters as a plain dict (TimingKernel API) — valid
        mid-run between :meth:`step` calls, not just at the end."""
        stats = self.stats
        snap = stats.snapshot()
        cycle = self._cycle
        committed = self._committed
        snap.update(
            cycles=cycle, committed=committed,
            ipc=committed / cycle if cycle else 0.0,
            avg_ifq_occupancy=stats.ifq_occupancy_sum / cycle if cycle else 0.0,
            avg_ruu_occupancy=stats.ruu_occupancy_sum / cycle if cycle else 0.0,
            backend=self.backend)
        return snap

    def _run_loop(self, stop: int) -> None:
        # The per-cycle loop dominates wall clock; everything invariant is
        # hoisted into locals, the rare phases (complete / commit / mode
        # tick / issue) are only dispatched when their guard says they have
        # work, and the every-cycle phases (decode, fetch) are inlined —
        # semantics are identical to calling each phase unconditionally.
        # Resumable: accumulators seed from the stats fields and flush back
        # on exit, so any split of a run into ``_run_loop`` calls (one big
        # one, per-cycle steps, fast-forward jumps) leaves identical state.
        n = len(self._entries)
        cfg = self.config
        stats = self.stats
        sstats = stats.spear
        max_cycles = cfg.max_cycles
        if stop > max_cycles:
            stop = max_cycles
        decode_width = cfg.decode_width
        fetch_width = cfg.fetch_width
        ruu_size = cfg.ruu_size
        wp_mode = cfg.wrong_path
        events = self._events
        rob = self._main_rob
        ifq = self.ifq
        ifq_slots = ifq._slots
        ifq_size = ifq.size
        marked_queue = ifq.marked_queue
        spear = cfg.spear_enabled
        chaining = self._chaining
        trigger_occ = self._trigger_occ
        policy = self._policy
        policy_on = policy is not None
        policy_interval = policy.interval if policy_on else 0
        entries = self._entries
        marked_flags = self._marked_flags
        dload_flags = self._dload_flags
        last_writer = self._last_writer
        store_map = self._store_map
        main_ready = self._main_ready
        predict_and_update = self.predictor.predict_and_update
        tracer = self._tracer
        trace_on = tracer is not None   # plain-bool guard: cheapest test
        sampler = self._sampler
        sampling = sampler is not None
        sample_interval = sampler.interval if sampling else 0
        main_ts = self.mem.thread_stats[MAIN_THREAD]
        ff = self._ff
        ifq_occ_sum = stats.ifq_occupancy_sum
        ruu_occ_sum = stats.ruu_occupancy_sum
        mode_cycles = sstats.cycles_in_mode
        decoded_total = stats.decoded
        fetched_total = stats.fetched
        while self._committed < n:
            cycle = self._cycle
            if cycle >= stop:
                break
            if (ff and cycle not in events and not main_ready
                    and not self._pt_ready and not (rob and rob[0].done)):
                # Fast-forward hook (no-op on the reference kernel): when
                # the whole machine is provably idle this cycle, jump to
                # the next cycle anything can change, updating the idle-
                # classified stats and sampler boundaries in bulk.  The
                # guard repeats the hook's cheapest vetoes inline so busy
                # cycles never pay the call.
                jump = self._fast_forward(cycle, stop, ifq_occ_sum,
                                          ruu_occ_sum, mode_cycles)
                if jump is not None:
                    cycle, ifq_occ_sum, ruu_occ_sum, mode_cycles = jump
                    self._cycle = cycle
                    if cycle >= stop:
                        break
            finished = events.pop(cycle, None)
            if finished is not None:
                self._complete(finished)
            if rob and rob[0].done:
                self._commit()
            mode = self._mode
            if mode != _IDLE:
                self._spear_mode_tick()
                mode = self._mode
            elif spear and marked_queue and (chaining
                                             or len(ifq_slots) >= trigger_occ):
                # With chaining triggers the occupancy requirement is waived
                # (see _try_retrigger), so the fast-path guard must not
                # swallow low-occupancy retriggers under that config.
                self._try_retrigger()
                mode = self._mode
            if self._pt_ready or main_ready:
                self._issue()
            extracted = self._extract() if mode == _ACTIVE else 0

            # ---- decode / rename (inlined _decode) -----------------------
            if ifq_slots:
                budget = decode_width - extracted
                barrier_seq = self._barrier_seq
                next_seq = self._next_seq
                while budget > 0:
                    if not ifq_slots:
                        stats.decode_stall_empty_ifq += 1
                        break
                    if len(rob) >= ruu_size:
                        stats.decode_stall_ruu_full += 1
                        break
                    head = ifq_slots[0]
                    if barrier_seq >= 0 and head.seq > barrier_seq:
                        # Entries past an unresolved mispredicted branch are
                        # speculative wrong-path content: not decodable.
                        break
                    if head.trace_idx < 0:
                        # Wrong-path region: bubbles sit in the IFQ (keeping
                        # the occupancy the trigger logic sees realistic)
                        # until the branch resolves and flushes them.
                        break
                    slot = ifq_slots.popleft()
                    # Main thread caught up with an untriggered or still-
                    # pending pre-execution target: pre-executing it would
                    # be pointless.
                    if (self._mode != _IDLE and not self._trigger_extracted
                            and slot.trace_idx == self._trigger_trace_idx):
                        sstats.modes_aborted += 1
                        self._end_mode()
                    entry = entries[slot.trace_idx]
                    instr = DynInstr(next_seq, MAIN_THREAD, slot.trace_idx,
                                     entry, cycle)
                    next_seq += 1
                    for r in entry.srcs:
                        prod = last_writer.get(r)
                        if prod is not None and not prod.done:
                            instr.deps += 1
                            prod.consumers.append(instr)
                    if entry.is_load:
                        st = store_map.get(entry.addr >> 3)
                        if st is not None and not st.done:
                            instr.deps += 1
                            st.consumers.append(instr)
                    if entry.dst >= 0:
                        last_writer[entry.dst] = instr
                    if entry.is_store:
                        store_map[entry.addr >> 3] = instr
                    rob.append(instr)
                    decoded_total += 1
                    if trace_on:
                        tracer.emit(TraceEvent(cycle, DECODE, MAIN_THREAD,
                                               entry.pc, slot.trace_idx))
                    if instr.deps == 0:
                        main_ready.append(instr)
                    budget -= 1
                self._next_seq = next_seq
            elif extracted == 0:
                stats.decode_stall_empty_ifq += 1
            else:
                # The decode budget went to PE extraction this cycle; the
                # empty IFQ is not what stalled the main thread.
                stats.decode_pe_busy += 1

            # ---- fetch / pre-decode (inlined _fetch) ---------------------
            if self._await_branch_idx >= 0:
                stats.fetch_stall_mispredict += 1
                if wp_mode == "bubbles":
                    for _ in range(fetch_width):
                        if len(ifq_slots) >= ifq_size:
                            break
                        ifq.push_bubble()
                        stats.wrong_path_fetched += 1
                elif wp_mode == "reconverge":
                    self._fetch_wrong_path_reconvergent()
            elif cycle < self._fetch_resume_cycle:
                stats.fetch_stall_mispredict += 1
            else:
                fetched = 0
                idx = self._fetch_idx
                seq = ifq._next_seq
                while fetched < fetch_width and idx < n:
                    if len(ifq_slots) >= ifq_size:
                        stats.fetch_stall_ifq_full += 1
                        break
                    entry = entries[idx]
                    is_dload = dload_flags[idx]
                    slot = IFQSlot(idx, seq, marked_flags[idx] != 0,
                                   is_dload != 0)
                    seq += 1
                    ifq_slots.append(slot)
                    if slot.marked:
                        marked_queue.append(slot)
                    if trace_on:
                        tracer.emit(TraceEvent(cycle, FETCH, MAIN_THREAD,
                                               entry.pc, idx))
                    idx += 1
                    fetched += 1

                    if is_dload:
                        if self._mode != _IDLE:
                            sstats.triggers_blocked += 1
                        elif len(ifq_slots) >= trigger_occ:
                            ifq._next_seq = seq
                            self._begin_trigger(idx - 1, slot.seq)
                        else:
                            sstats.triggers_suppressed += 1

                    if entry.is_cond:
                        stats.cond_branches += 1
                        correct = predict_and_update(entry.pc, entry.taken)
                        if not correct:
                            stats.mispredicts += 1
                            self._await_branch_idx = idx - 1
                            if tracer is not None:
                                tracer.emit(TraceEvent(
                                    cycle, MISPREDICT, MAIN_THREAD, entry.pc,
                                    idx - 1, "taken" if entry.taken else
                                    "not-taken"))
                            if wp_mode == "reconverge":
                                self._barrier_seq = slot.seq
                                self._wrong_path_real = 0
                            break
                        if entry.taken:
                            break  # redirect: taken branch ends fetch group
                    elif entry.is_branch:
                        break  # unconditional control flow ends fetch group
                ifq._next_seq = seq
                self._fetch_idx = idx
                fetched_total += fetched

            ifq_occ_sum += len(ifq_slots)
            ruu_occ_sum += len(rob)
            if self._mode != _IDLE:
                mode_cycles += 1
            self._cycle = cycle + 1
            if policy_on and (cycle + 1) % policy_interval == 0:
                # Decision boundary: the controller may move the live
                # operating point, so the hoisted locals must refresh.
                # Keyed on the cycle number alone (like the sampler), so
                # any split of the run into _run_loop calls — steps,
                # fast-forward jumps clamped to the boundary — produces
                # the identical decision sequence.
                if policy.tick(self, cycle + 1):
                    trigger_occ = self._trigger_occ
                    chaining = self._chaining
            if sampling and (cycle + 1) % sample_interval == 0:
                sampler.take(cycle + 1, self._committed, ifq_occ_sum,
                             ruu_occ_sum, mode_cycles, main_ts.accesses,
                             main_ts.l1_misses,
                             per_thread=self._thread_counters())
        stats.ifq_occupancy_sum = ifq_occ_sum
        stats.ruu_occupancy_sum = ruu_occ_sum
        stats.decoded = decoded_total
        stats.fetched = fetched_total
        sstats.cycles_in_mode = mode_cycles
        if self._committed < n and self._cycle >= max_cycles:
            raise RuntimeError(
                f"{cfg.name}: exceeded max_cycles={cfg.max_cycles} "
                f"({self._committed}/{n} committed) — likely a deadlock")

    def _finalize(self) -> PipelineResult:
        """Close out a completed run: tail sampler interval, final stats
        fields, and the :class:`PipelineResult` (TimingKernel API)."""
        stats = self.stats
        sampler = self._sampler
        if sampler is not None:
            # Partial tail interval (no-op if the run ended on a boundary).
            main_ts = self.mem.thread_stats[MAIN_THREAD]
            sampler.take(self._cycle, self._committed,
                         stats.ifq_occupancy_sum, stats.ruu_occupancy_sum,
                         stats.spear.cycles_in_mode, main_ts.accesses,
                         main_ts.l1_misses,
                         per_thread=self._thread_counters())
        stats.cycles = self._cycle
        stats.committed = self._committed
        timeline = sampler.timeline() if sampler is not None else None
        policy = self._policy
        if policy is not None and timeline is not None:
            # Attach the decision series so policy moves are attributable
            # against the sampled phases (rendered generically by
            # ``repro analyze --timeline``).
            timeline = dict(timeline)
            timeline["policy"] = policy.series()
        return PipelineResult(
            config_name=self.config.name,
            stats=stats,
            memory=self.mem.snapshot(),
            predictor={"hit_ratio": self.predictor.stats.hit_ratio,
                       "lookups": self.predictor.stats.lookups},
            prefetcher=self.prefetcher.stats.snapshot(),
            workload=self.trace.program_name,
            timeline=timeline,
            policy=policy.summary() if policy is not None else None)

    def _fast_forward(self, cycle: int, stop: int, ifq_occ_sum: int,
                      ruu_occ_sum: int, mode_cycles: int
                      ) -> tuple[int, int, int, int] | None:
        """Fast-forward hook; the reference kernel never skips.

        Only consulted when :attr:`_ff` is set.  An overriding backend
        returns None when the coming cycle has (or may have) real work,
        or the ``(new_cycle, ifq_occ_sum, ruu_occ_sum, mode_cycles)``
        state after jumping over a provably idle stretch.
        """
        return None

    def _thread_counters(self) -> tuple:
        """Cumulative per-thread (completed, issued, l1_accesses,
        l1_misses) tuples for the sampler's per-thread series."""
        stats = self.mem.thread_stats
        completed = self._completed_by_thread
        issued = self._issued_by_thread
        m, p = stats[MAIN_THREAD], stats[P_THREAD]
        # Built literally (no genexpr/tuple() machinery): this runs at
        # every sampler boundary of every traced run.
        return ((completed[MAIN_THREAD], issued[MAIN_THREAD],
                 m.accesses, m.l1_misses),
                (completed[P_THREAD], issued[P_THREAD],
                 p.accesses, p.l1_misses))

    # ------------------------------------------------------------------
    # Completion / wakeup
    # ------------------------------------------------------------------

    def _complete(self, finished: list[DynInstr]) -> None:
        """Process the instructions whose completion event is this cycle
        (the run loop pops the event list and skips the call when empty)."""
        main_ready = self._main_ready
        pt_ready = self._pt_ready
        tracer = self._tracer
        if tracer is not None:
            # Pre-pass keeps the completion loop itself branch-free for
            # the (default) untraced run.
            cycle = self._cycle
            for instr in finished:
                tracer.emit(TraceEvent(cycle, COMPLETE, instr.thread,
                                       instr.entry.pc, instr.trace_idx))
        completed_by_thread = self._completed_by_thread
        for instr in finished:
            instr.done = True
            completed_by_thread[instr.thread] += 1
            for cons in instr.consumers:
                cons.deps -= 1
                if cons.deps == 0 and not cons.issued:
                    (pt_ready if cons.thread else main_ready).append(cons)
            if instr.thread == P_THREAD:
                self._pt_inflight -= 1
                if instr.is_trigger_dload and self._mode == _ACTIVE:
                    self.stats.spear.modes_completed += 1
                    self._end_mode()
            elif instr.trace_idx == self._await_branch_idx:
                self._await_branch_idx = -1
                self._fetch_resume_cycle = (
                    self._cycle + self.config.mispredict_redirect_penalty)
                if self._barrier_seq >= 0:
                    # Reconverge recovery: squash the wrong-path span and
                    # re-fetch it from just past the branch.  The cache
                    # state left by any p-thread extraction survives.
                    flushed = self.ifq.flush_after(self._barrier_seq)
                    self.stats.wrong_path_flushed += flushed
                    self._fetch_idx = instr.trace_idx + 1
                    self._barrier_seq = -1
                else:
                    self.stats.wrong_path_flushed += self.ifq.flush_bubbles()

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------

    def _commit(self) -> None:
        rob = self._main_rob
        budget = self.config.commit_width
        last_writer = self._last_writer
        store_map = self._store_map
        tracer = self._tracer
        cycle = self._cycle
        while budget and rob and rob[0].done:
            instr = rob.popleft()
            e = instr.entry
            if tracer is not None:
                tracer.emit(TraceEvent(cycle, COMMIT, MAIN_THREAD, e.pc,
                                       instr.trace_idx))
            if e.dst >= 0 and last_writer.get(e.dst) is instr:
                del last_writer[e.dst]
            if e.is_store:
                w = e.addr >> 3
                if store_map.get(w) is instr:
                    del store_map[w]
            self._committed += 1
            budget -= 1

    # ------------------------------------------------------------------
    # SPEAR mode state machine
    # ------------------------------------------------------------------

    def _spear_mode_tick(self) -> None:
        # Only called with a mode in flight: the run loop routes idle-time
        # dormant-d-load wakeups straight to _try_retrigger.
        if self._mode == _DRAIN:
            if self._drain_satisfied():
                self._mode = _COPY
                if self._tracer is not None:
                    self._emit_mode(_DRAIN, _COPY)
                if self._copy_remaining == 0:
                    self._begin_active()
            else:
                self.stats.spear.drain_wait_cycles += 1
        elif self._mode == _COPY:
            self.stats.spear.livein_copy_cycles += 1
            self._copy_remaining -= 1
            if self._copy_remaining <= 0:
                self._begin_active()

    def _emit_mode(self, old: int, new: int) -> None:
        self._tracer.emit(TraceEvent(
            self._cycle, MODE, -1, -1, -1,
            f"{MODE_NAMES[old]}->{MODE_NAMES[new]}"))

    def _begin_active(self) -> None:
        self._mode = _ACTIVE
        if self._tracer is not None:
            self._emit_mode(_COPY, _ACTIVE)
        # Live-in semantics: the p-thread starts from the main thread's
        # architectural register state.  Any register whose main-thread
        # producer is still in flight is not copyable yet, so chain-starting
        # p-thread instances must wait for it.  Without this seeding, a
        # loop-carried slice (pointer chase, fft index mixing) would
        # "teleport" to oracle future values at every trigger and overstate
        # pre-execution by the whole IFQ depth.
        self._pt_last_writer = {
            r: prod for r, prod in self._last_writer.items()
            if not prod.done}
        self._trigger_extracted = False

    def _drain_satisfied(self) -> bool:
        """Has the configured 'deterministic state' been reached?"""
        policy = self.config.drain_policy
        if policy == "livein":
            producers = self._drain_producers
            while producers and producers[-1].done:
                producers.pop()
            return not producers
        if policy == "full":
            rob = self._main_rob
            return not rob or rob[0].seq > self._drain_seq
        return True  # "none"

    def _begin_trigger(self, trace_idx: int, slot_seq: int) -> None:
        """Enter pre-execution mode for the d-load at ``trace_idx``."""
        pc = self._entries[trace_idx].pc
        pthread = self.table[pc]
        self._mode = _DRAIN
        if self._tracer is not None:
            self._emit_mode(_IDLE, _DRAIN)
        self._trigger_trace_idx = trace_idx
        self._trigger_extracted = False
        self._drain_seq = self._main_rob[-1].seq if self._main_rob else -1
        if self.config.drain_policy == "livein":
            lw = self._last_writer
            self._drain_producers = [
                p for p in (lw.get(r) for r in pthread.live_ins)
                if p is not None and not p.done]
        self._copy_remaining = (len(pthread.live_ins)
                                * self.config.livein_copy_cycles)
        self._pe_seq = max(self._pe_seq, self.ifq.head_seq)
        self.stats.spear.triggers += 1

    def _end_mode(self) -> None:
        old = self._mode
        self._mode = _IDLE
        self._trigger_trace_idx = -1
        if self._tracer is not None:
            self._emit_mode(old, _IDLE)
        self._try_retrigger()

    def _try_retrigger(self) -> None:
        """A d-load that entered the IFQ while a mode was running is dormant
        but still marked; give it a chance to trigger now (DESIGN.md §6.3).

        With chaining triggers enabled the occupancy requirement is waived:
        a completed p-thread hands off to the next dormant d-load directly,
        the Collins-style chaining the paper's related work describes.
        ``_chaining`` is the live operating point (an adaptive-phase
        controller may flip it mid-run), not the config constant."""
        if (not self._chaining
                and self.ifq.occupancy < self._trigger_occ):
            return
        self.ifq.prune_marked()
        # Scan from the tail: the *newest* dormant d-load plays the role of
        # a freshly pre-decoded one, so the PE sweeps every marked entry
        # between its head pointer and the IFQ tail in this mode.
        for slot in reversed(self.ifq.marked_queue):
            if slot.seq >= self._pe_seq and slot.marked and slot.is_dload:
                self._begin_trigger(slot.trace_idx, slot.seq)
                self.stats.spear.retriggers += 1
                return

    # ------------------------------------------------------------------
    # P-thread extraction
    # ------------------------------------------------------------------

    def _extract(self) -> int:
        if self._trigger_extracted or not self.ifq.marked_queue:
            return 0
        cfg = self.config
        sstats = self.stats.spear
        budget = cfg.extract_width
        extracted = 0
        ifq = self.ifq
        ifq_slots = ifq._slots
        mq = ifq.marked_queue
        while budget > 0:
            # Inlined ``ifq.next_marked`` (prune + first-marked scan).
            head_seq = ifq_slots[0].seq if ifq_slots else ifq._next_seq
            while mq and (mq[0].seq < head_seq or not mq[0].marked):
                mq.popleft()
            slot = None
            pe_seq = self._pe_seq
            for s in mq:
                if s.seq >= pe_seq and s.marked:
                    slot = s
                    break
            if slot is None:
                break
            if self._pt_inflight >= cfg.pthread_ruu_size:
                sstats.extraction_stall_ruu_full += 1
                break
            slot.marked = False
            self._pe_seq = slot.seq + 1
            if slot.trace_idx <= self._max_extracted_idx:
                # Duplicate from a wrong-path flush re-fetch: this dynamic
                # instance was already pre-executed; skip it.
                if slot.trace_idx == self._trigger_trace_idx:
                    sstats.modes_completed += 1
                    self._end_mode()
                    break
                continue
            self._max_extracted_idx = slot.trace_idx
            self._spawn_pthread_instr(slot.trace_idx)
            extracted += 1
            budget -= 1
            if slot.trace_idx == self._trigger_trace_idx:
                self._trigger_extracted = True
                break
        return extracted

    def _spawn_pthread_instr(self, trace_idx: int) -> None:
        entry = self._entries[trace_idx]
        instr = DynInstr(self._next_seq, P_THREAD, trace_idx, entry,
                         self._cycle)
        self._next_seq += 1
        ptlw = self._pt_last_writer
        for r in entry.srcs:
            prod = ptlw.get(r)
            if prod is not None and not prod.done:
                instr.deps += 1
                prod.consumers.append(instr)
        if entry.dst >= 0:
            ptlw[entry.dst] = instr
        if trace_idx == self._trigger_trace_idx:
            instr.is_trigger_dload = True
        if self._tracer is not None:
            self._tracer.emit(TraceEvent(
                self._cycle, EXTRACT, P_THREAD, entry.pc, trace_idx,
                "trigger" if instr.is_trigger_dload else ""))
        self._pt_inflight += 1
        sstats = self.stats.spear
        sstats.pthread_instrs += 1
        sstats.extracted += 1
        if entry.is_load:
            sstats.pthread_loads += 1
        if instr.deps == 0:
            self._pt_ready.append(instr)

    # ------------------------------------------------------------------
    # Issue / execute
    # ------------------------------------------------------------------

    def _issue(self) -> None:
        cfg = self.config
        fu_main = self._fu_main
        fu_pt = self._fu_pt
        fu_main.begin_cycle()
        if fu_pt is not fu_main:
            fu_pt.begin_cycle()

        budget = cfg.issue_width
        # Dedicated-FU models give the p-thread its own issue path (the
        # paper likens them to a CMP); shared models share the budget.
        pt_budget = cfg.issue_width if cfg.separate_fu else budget

        issued_by_thread = self._issued_by_thread
        if self._pt_ready and cfg.pthread_priority:
            used = self._issue_from(self._pt_ready, fu_pt, pt_budget,
                                    decode_before=self._cycle)
            issued_by_thread[P_THREAD] += used
            if not cfg.separate_fu:
                budget -= used
        if budget > 0 and self._main_ready:
            issued_by_thread[MAIN_THREAD] += self._issue_from(
                self._main_ready, fu_main, budget, decode_before=self._cycle)
        if self._pt_ready and not cfg.pthread_priority and budget > 0:
            # Ablation path: p-thread competes after the main thread.
            issued_by_thread[P_THREAD] += self._issue_from(
                self._pt_ready, fu_pt, pt_budget, decode_before=self._cycle)

    def _issue_from(self, ready: list[DynInstr], pool: FUPool, budget: int,
                    decode_before: int) -> int:
        """Issue up to ``budget`` ready instructions; returns count issued."""
        if budget <= 0 or not ready:
            return 0
        issued = 0
        leftovers: list[DynInstr] = []
        events = self._events
        cycle = self._cycle
        mem = self.mem
        stats = self.stats
        take = pool.take
        prefetch_active = self._prefetch_active
        tracer = self._tracer
        trace_on = tracer is not None
        for idx, instr in enumerate(ready):
            if issued >= budget:
                leftovers.extend(ready[idx:])
                break
            # Instructions decoded this very cycle issue next cycle.
            if instr.decode_cycle >= decode_before:
                leftovers.append(instr)
                continue
            e = instr.entry
            if not take(e.op_class):
                stats.issue_fu_conflicts += 1
                leftovers.append(instr)
                continue
            if e.is_load:
                lat = mem.access(e.addr, thread=instr.thread, now=cycle)
                comp = cycle + (lat if lat > 1 else 1)
                if trace_on:
                    tracer.emit(TraceEvent(cycle, ISSUE, instr.thread, e.pc,
                                           instr.trace_idx, f"load:{lat}"))
                if prefetch_active and instr.thread == MAIN_THREAD:
                    for target in self.prefetcher.observe(
                            e.pc, e.addr, lat > mem.latencies.l1):
                        if trace_on:
                            tracer.emit(TraceEvent(
                                cycle, PREFETCH, MAIN_THREAD, e.pc,
                                instr.trace_idx, f"{target:#x}"))
                        if mem.prefetch(target, now=cycle):
                            self.prefetcher.stats.useful_hint += 1
                            if trace_on:
                                tracer.emit(TraceEvent(
                                    cycle, FILL, MAIN_THREAD, e.pc,
                                    instr.trace_idx, f"{target:#x}"))
            elif e.is_store:
                mem.access(e.addr, is_write=True, thread=instr.thread,
                           now=cycle)
                comp = cycle + 1
                if trace_on:
                    tracer.emit(TraceEvent(cycle, ISSUE, instr.thread, e.pc,
                                           instr.trace_idx, "store"))
            else:
                comp = cycle + OP_LATENCY[e.op_class]
                if trace_on:
                    tracer.emit(TraceEvent(cycle, ISSUE, instr.thread, e.pc,
                                           instr.trace_idx))
            instr.issued = True
            instr.completion_cycle = comp
            lst = events.get(comp)
            if lst is None:
                events[comp] = [instr]
            else:
                lst.append(instr)
            issued += 1
        ready[:] = leftovers
        stats.issued += issued
        return issued

    # ------------------------------------------------------------------
    # Fetch / pre-decode
    # ------------------------------------------------------------------

    def _fetch_wrong_path_reconvergent(self) -> None:
        """Wrong-path fetch in the reconvergent model.

        The kernels' conditional branches are short forward hammocks whose
        wrong path reconverges within a few instructions, so the machine's
        wrong-path fetch stream is nearly identical to the future committed
        path.  We therefore keep fetching real trace entries — pre-decode
        marking and trigger checks included, so the PE can pre-execute
        across the mispredict exactly as the paper's hardware does — but
        the entries stay un-decodable (behind the barrier) and are
        squashed and re-fetched at resolution.  Further branches inside the
        wrong-path span are not predicted: the machine is already off the
        architectural path.
        """
        cfg = self.config
        ifq = self.ifq
        ifq_slots = ifq._slots
        ifq_size = ifq.size
        stats = self.stats
        entries = self._entries
        n = len(entries)
        marked_flags = self._marked_flags
        dload_flags = self._dload_flags
        fetched = 0
        while fetched < cfg.fetch_width and self._fetch_idx < n:
            if len(ifq_slots) >= ifq_size:
                break
            if self._wrong_path_real >= cfg.reconverge_window:
                # Past plausible reconvergence: the stream is genuinely
                # wrong-path from here on — opaque bubbles only.
                ifq.push_bubble()
                fetched += 1
                stats.wrong_path_fetched += 1
                continue
            idx = self._fetch_idx
            entry = entries[idx]
            is_dload = dload_flags[idx]
            slot = ifq.push(idx, marked=marked_flags[idx] != 0,
                            is_dload=is_dload != 0)
            if self._tracer is not None:
                self._tracer.emit(TraceEvent(self._cycle, FETCH, MAIN_THREAD,
                                             entry.pc, idx, "wrong-path"))
            self._fetch_idx += 1
            fetched += 1
            stats.wrong_path_fetched += 1
            self._wrong_path_real += 1
            if is_dload:
                sstats = stats.spear
                if self._mode != _IDLE:
                    sstats.triggers_blocked += 1
                elif len(ifq_slots) >= self._trigger_occ:
                    self._begin_trigger(idx, slot.seq)
                else:
                    sstats.triggers_suppressed += 1
            if entry.is_branch and entry.taken:
                break


def simulate(trace: Trace, config: MachineConfig,
             table: PThreadTable | None = None,
             memory: MemoryHierarchy | None = None,
             tracer: TraceSink | None = None,
             sampler: IntervalSampler | None = None,
             backend: str = "reference",
             policy=None) -> PipelineResult:
    """Run ``trace`` through ``config`` and return the result.

    ``backend`` selects the timing kernel (see
    :mod:`repro.pipeline.kernel`); every backend is byte-identical to
    ``reference``, so this is purely a wall-clock knob.  ``policy`` is an
    optional in-run trigger-policy controller (see :mod:`repro.policy`).
    """
    from .kernel import make_simulator
    return make_simulator(backend, trace, config, table, memory,
                          tracer=tracer, sampler=sampler, policy=policy).run()
