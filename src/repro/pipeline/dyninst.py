"""Dynamic instruction instances living in the RUU.

One :class:`DynInstr` is created per decoded main-thread instruction and
per extracted p-thread instruction.  The paper's RUU (Register Update Unit)
doubles as physical registers, scheduler and reorder buffer; here each
entry tracks its unresolved producer count and its consumer list, giving
O(1) wakeup without per-cycle RUU scans.
"""

from __future__ import annotations

from ..functional.trace import TraceEntry

MAIN_THREAD = 0
P_THREAD = 1


class DynInstr:
    """One in-flight instruction instance."""

    __slots__ = ("seq", "thread", "trace_idx", "entry", "deps", "consumers",
                 "issued", "done", "completion_cycle", "is_trigger_dload",
                 "decode_cycle")

    def __init__(self, seq: int, thread: int, trace_idx: int,
                 entry: TraceEntry, decode_cycle: int):
        self.seq = seq
        self.thread = thread
        self.trace_idx = trace_idx
        self.entry = entry
        #: Number of still-outstanding producers.
        self.deps = 0
        #: Instructions waiting on this one's result.
        self.consumers: list[DynInstr] = []
        self.issued = False
        self.done = False
        self.completion_cycle = -1
        #: True for the p-thread instance of the d-load that triggered the
        #: current pre-execution mode (its completion ends the mode).
        self.is_trigger_dload = False
        self.decode_cycle = decode_cycle

    @property
    def ready(self) -> bool:
        return self.deps == 0 and not self.issued

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        t = "P" if self.thread else "M"
        state = "done" if self.done else ("issued" if self.issued else
                                          f"deps={self.deps}")
        return f"<{t}#{self.seq} t{self.trace_idx} pc={self.entry.pc} {state}>"
