"""The Instruction Fetch Queue with p-thread indicator bits.

The paper's IFQ is a circular FIFO whose entries carry a one-bit *p-thread
indicator* set during pre-decode.  The main thread's decoder consumes
entries from the head; the P-thread Extractor (PE) *copies* marked entries
out (leaving them in place for the main thread) and clears their indicator
to prevent double pre-execution.

``IFQSlot.seq`` is a monotonically increasing sequence number standing in
for the circular-buffer position; the PE's "p-thread head" pointer is a
sequence number too, so the circularity never needs to be modeled
explicitly.
"""

from __future__ import annotations

from collections import deque


class IFQSlot:
    """One IFQ entry."""

    __slots__ = ("trace_idx", "seq", "marked", "is_dload")

    def __init__(self, trace_idx: int, seq: int, marked: bool, is_dload: bool):
        self.trace_idx = trace_idx
        self.seq = seq
        #: P-thread indicator bit (set at pre-decode, cleared by the PE).
        self.marked = marked
        self.is_dload = is_dload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = ("M" if self.marked else "") + ("D" if self.is_dload else "")
        return f"<IFQ #{self.seq} t{self.trace_idx} {flags}>"


class InstructionFetchQueue:
    """FIFO of fetched instructions plus the marked-entry index.

    ``marked_queue`` holds references to slots whose indicator is on, in
    program order — exactly what the PE scans.  Slots already consumed by
    the main decoder are recognized by ``slot.seq < head_seq`` and skipped
    lazily.
    """

    __slots__ = ("size", "_slots", "marked_queue", "_next_seq")

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("IFQ size must be positive")
        self.size = size
        self._slots: deque[IFQSlot] = deque()
        self.marked_queue: deque[IFQSlot] = deque()
        self._next_seq = 0

    # -- occupancy ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._slots)

    @property
    def occupancy(self) -> int:
        return len(self._slots)

    @property
    def is_full(self) -> bool:
        return len(self._slots) >= self.size

    @property
    def is_empty(self) -> bool:
        return not self._slots

    @property
    def head_seq(self) -> int:
        """Sequence number of the oldest un-decoded entry."""
        return self._slots[0].seq if self._slots else self._next_seq

    # -- operations -----------------------------------------------------------

    def push(self, trace_idx: int, *, marked: bool = False,
             is_dload: bool = False) -> IFQSlot:
        """Insert a pre-decoded instruction at the tail."""
        if len(self._slots) >= self.size:
            raise OverflowError("IFQ overflow — caller must check is_full")
        slot = IFQSlot(trace_idx, self._next_seq, marked, is_dload)
        self._next_seq += 1
        self._slots.append(slot)
        if marked:
            self.marked_queue.append(slot)
        return slot

    def push_bubble(self) -> IFQSlot:
        """Insert a wrong-path placeholder (``trace_idx = -1``).

        Bubbles occupy IFQ capacity (and therefore count toward the
        trigger-occupancy check, as wrong-path instructions do in real
        hardware) but are never marked and never reach the RUU.
        """
        return self.push(-1)

    def flush_after(self, seq: int) -> int:
        """Squash every entry younger than ``seq`` (mispredict recovery in
        the reconvergent wrong-path model).  Returns the number squashed."""
        n = 0
        while self._slots and self._slots[-1].seq > seq:
            slot = self._slots.pop()
            slot.marked = False   # make next_marked() skip any stale ref
            n += 1
        return n

    def flush_bubbles(self) -> int:
        """Squash wrong-path entries at mispredict resolution.

        Bubbles are always a contiguous tail suffix: real fetch stops at
        the mispredicted branch, so everything younger is wrong-path.
        Returns the number of squashed entries.
        """
        n = 0
        while self._slots and self._slots[-1].trace_idx < 0:
            self._slots.pop()
            n += 1
        return n

    def pop_head(self) -> IFQSlot:
        """Main-thread decode consumes the head entry."""
        return self._slots.popleft()

    def peek_head(self) -> IFQSlot | None:
        return self._slots[0] if self._slots else None

    def prune_marked(self) -> None:
        """Drop marked-queue entries already consumed or already extracted."""
        head = self.head_seq
        mq = self.marked_queue
        while mq and (mq[0].seq < head or not mq[0].marked):
            mq.popleft()

    def next_marked(self, from_seq: int) -> IFQSlot | None:
        """First still-marked slot at or after ``from_seq`` (PE scan)."""
        self.prune_marked()
        for slot in self.marked_queue:
            if slot.seq >= from_seq and slot.marked:
                return slot
        return None

    def clear(self) -> None:
        self._slots.clear()
        self.marked_queue.clear()
