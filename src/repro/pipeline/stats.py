"""Counters and results for the timing model."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SpearStats:
    """Pre-execution machinery accounting."""

    triggers: int = 0              # pre-execution modes entered
    triggers_suppressed: int = 0   # d-load seen but occupancy below threshold
    triggers_blocked: int = 0      # d-load seen while already in a mode
    modes_completed: int = 0       # trigger d-load instance retired
    modes_aborted: int = 0         # main thread reached the d-load first
    pthread_instrs: int = 0        # p-thread instructions executed
    pthread_loads: int = 0
    extracted: int = 0             # = pthread_instrs (kept for clarity)
    #: triggers that fired through the dormant-d-load retrigger scan
    #: (chaining hand-offs and post-mode wakeups) rather than straight
    #: from pre-decode — the chaining-depth signal the fuzz coverage
    #: maps band on.  Defaulted, so pre-coverage pickled results still
    #: unpickle (same trick as ``PipelineResult.policy``).
    retriggers: int = 0
    livein_copy_cycles: int = 0
    drain_wait_cycles: int = 0
    extraction_stall_ruu_full: int = 0
    cycles_in_mode: int = 0

    def snapshot(self) -> dict:
        return dict(self.__dict__)


@dataclass
class PipelineStats:
    """Whole-run counters."""

    cycles: int = 0
    committed: int = 0
    fetched: int = 0
    decoded: int = 0
    issued: int = 0
    # Stall diagnostics ------------------------------------------------
    decode_stall_ruu_full: int = 0
    decode_stall_empty_ifq: int = 0
    decode_pe_busy: int = 0   # IFQ empty but decode slots went to the PE
    fetch_stall_mispredict: int = 0
    fetch_stall_ifq_full: int = 0
    issue_fu_conflicts: int = 0
    wrong_path_fetched: int = 0
    wrong_path_flushed: int = 0
    # Branching -----------------------------------------------------------
    cond_branches: int = 0
    mispredicts: int = 0
    # Occupancy sampling ----------------------------------------------------
    ifq_occupancy_sum: int = 0
    ruu_occupancy_sum: int = 0
    spear: SpearStats = field(default_factory=SpearStats)

    @property
    def ipc(self) -> float:
        """Main-program-thread IPC — the paper's performance metric."""
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def branch_hit_ratio(self) -> float:
        if not self.cond_branches:
            return 1.0
        return 1.0 - self.mispredicts / self.cond_branches

    @property
    def avg_ifq_occupancy(self) -> float:
        return self.ifq_occupancy_sum / self.cycles if self.cycles else 0.0

    @property
    def avg_ruu_occupancy(self) -> float:
        return self.ruu_occupancy_sum / self.cycles if self.cycles else 0.0

    def snapshot(self) -> dict:
        d = {k: v for k, v in self.__dict__.items() if k != "spear"}
        d.update(ipc=self.ipc, branch_hit_ratio=self.branch_hit_ratio,
                 avg_ifq_occupancy=self.avg_ifq_occupancy,
                 avg_ruu_occupancy=self.avg_ruu_occupancy,
                 spear=self.spear.snapshot())
        return d


@dataclass
class PipelineResult:
    """Everything a run produces, as consumed by the harness and tests."""

    config_name: str
    stats: PipelineStats
    memory: dict
    predictor: dict
    workload: str = ""
    prefetcher: dict = field(default_factory=dict)
    #: interval time series (``IntervalSampler.timeline()``) when the run
    #: was sampled; None for plain runs so summaries stay unchanged.
    #: Carries the global ``samples`` list plus a ``per_thread`` view
    #: (one series per hardware thread) — see
    #: :meth:`repro.observe.sampler.IntervalSampler.timeline`.
    timeline: dict | None = None
    #: adaptive trigger-policy summary (controller/epoch outcome) when the
    #: run executed under a non-fixed policy; None — a class-level default,
    #: so pre-policy pickled results still unpickle — for fixed runs, which
    #: keeps their summaries and serialized forms byte-identical.
    policy: dict | None = None

    @property
    def ipc(self) -> float:
        return self.stats.ipc

    def thread_series(self, thread: int) -> list[dict] | None:
        """One hardware thread's interval series (0 = main, 1 = p-thread),
        or None when the run was not sampled per-thread."""
        if not self.timeline:
            return None
        for t in self.timeline.get("per_thread", ()):
            if t["thread"] == thread:
                return t["samples"]
        return None

    @property
    def main_l1_misses(self) -> int:
        return self.memory["threads"][0]["l1_misses"]

    def summary(self) -> dict:
        out = {
            "config": self.config_name,
            "workload": self.workload,
            "cycles": self.stats.cycles,
            "committed": self.stats.committed,
            "ipc": self.ipc,
            "branch_hit_ratio": self.stats.branch_hit_ratio,
            "main_l1_misses": self.main_l1_misses,
            "triggers": self.stats.spear.triggers,
            "pthread_instrs": self.stats.spear.pthread_instrs,
        }
        # Only non-fixed runs grow the extra row: fixed-policy summaries
        # must stay byte-identical to the pre-policy tree's.
        if self.policy is not None:
            out["policy"] = self.policy.get("label", self.policy.get("name"))
        return out
