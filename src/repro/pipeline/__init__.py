"""Cycle-level SMT timing model with SPEAR pre-execution hardware."""

from .dyninst import DynInstr, MAIN_THREAD, P_THREAD
from .funits import FU_OF_CLASS, FUKind, FUPool
from .ifq import IFQSlot, InstructionFetchQueue
from .smt import TimingSimulator, simulate
from .stats import PipelineResult, PipelineStats, SpearStats

__all__ = ["DynInstr", "MAIN_THREAD", "P_THREAD", "FU_OF_CLASS", "FUKind",
           "FUPool", "IFQSlot", "InstructionFetchQueue", "TimingSimulator",
           "simulate", "PipelineResult", "PipelineStats", "SpearStats"]
