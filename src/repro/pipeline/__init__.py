"""Cycle-level SMT timing model with SPEAR pre-execution hardware."""

from .dyninst import DynInstr, MAIN_THREAD, P_THREAD
from .fastforward import FastForwardSimulator
from .funits import FU_OF_CLASS, FUKind, FUPool
from .ifq import IFQSlot, InstructionFetchQueue
from .kernel import (DEFAULT_BACKEND, KERNEL_BACKENDS, KERNELS, TimingKernel,
                     make_simulator, resolve_kernel)
from .smt import TimingSimulator, simulate, trace_flags
from .stats import PipelineResult, PipelineStats, SpearStats
from .sweep import BatchedSweepSimulator

__all__ = ["DynInstr", "MAIN_THREAD", "P_THREAD", "FU_OF_CLASS", "FUKind",
           "FUPool", "IFQSlot", "InstructionFetchQueue", "TimingSimulator",
           "FastForwardSimulator", "BatchedSweepSimulator", "TimingKernel",
           "KERNELS", "KERNEL_BACKENDS", "DEFAULT_BACKEND", "resolve_kernel",
           "make_simulator", "simulate", "trace_flags", "PipelineResult",
           "PipelineStats", "SpearStats"]
