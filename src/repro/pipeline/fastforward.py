"""Event-driven fast-forward timing kernel.

Stall-heavy workloads spend most of their cycles doing literally nothing:
the IFQ is full or empty, the RUU head is waiting on DRAM, no instruction
is ready to issue, and the only future state change is a completion event
already scheduled in the event map.  The reference kernel still walks
those cycles one by one; this backend proves a cycle idle and jumps
straight to the next cycle anything *can* change — the next completion
event or the post-mispredict fetch-redirect cycle — applying the skipped
cycles' stall counters, occupancy sums and interval-sampler boundaries in
one arithmetic step.

The contract is **byte identity** with the reference kernel: identical
``PipelineResult`` (stats, memory, predictor, timeline) and identical
trace streams.  The skip test is therefore deliberately conservative — it
re-derives exactly the decisions the reference loop would make this cycle
(including the stall counter each phase would bump) and refuses to skip
whenever any phase would mutate state.  Traced runs are equivalent by
construction: every tracer emit site lives on an active path, and idle
cycles emit nothing.

In-flight memory latencies need no adjustment on a jump: the event map
and the hierarchy's pending-fill table are keyed by *absolute* cycle
numbers, which a jump does not reinterpret.
"""

from __future__ import annotations

from .dyninst import MAIN_THREAD
from .smt import TimingSimulator, _COPY, _DRAIN, _IDLE


class FastForwardSimulator(TimingSimulator):
    """The ``fast-forward`` backend: reference semantics, skipped idle."""

    backend = "fast-forward"
    _ff = True

    #: Diagnostics (instance-shadowed on first jump).  Deliberately not
    #: part of ``PipelineStats`` — results stay byte-identical to the
    #: reference kernel's.
    ff_jumps = 0
    ff_cycles_skipped = 0

    def _fast_forward(self, cycle: int, stop: int, ifq_occ_sum: int,
                      ruu_occ_sum: int, mode_cycles: int
                      ) -> tuple[int, int, int, int] | None:
        """Skip to the next event horizon if this cycle is provably idle.

        Mirrors the reference loop's phase order: completion, commit,
        mode tick / retrigger, issue, extract, decode, fetch.  Any phase
        that would mutate state vetoes the skip; phases that would only
        bump a stall counter contribute that counter to the bulk update.
        """
        events = self._events
        if cycle in events:
            return None                      # completions fire this cycle
        rob = self._main_rob
        if rob and rob[0].done:
            return None                      # commit has work
        if self._main_ready or self._pt_ready:
            return None                      # issue has work
        cfg = self.config
        ifq = self.ifq
        ifq_slots = ifq._slots

        # ---- decode: would the main decoder consume anything? ----------
        # 0 = no counter, 1 = decode_stall_empty_ifq, 2 = decode_stall_
        # ruu_full.  Order matches the reference: the RUU-full check comes
        # before the barrier/bubble head checks (which bump nothing).
        if ifq_slots:
            if len(rob) >= cfg.ruu_size:
                decode_stat = 2
            else:
                head = ifq_slots[0]
                if not ((self._barrier_seq >= 0
                         and head.seq > self._barrier_seq)
                        or head.trace_idx < 0):
                    return None              # head is decodable
                decode_stat = 0
        else:
            decode_stat = 1                  # empty IFQ (and nothing to
            #                                  extract on an idle cycle)

        # ---- fetch -----------------------------------------------------
        # 0 = no counter, 1 = fetch_stall_mispredict, 2 = fetch_stall_
        # ifq_full.  ``fetch_resume`` carries the redirect cycle as an
        # extra horizon candidate.
        n = len(self._entries)
        ifq_full = len(ifq_slots) >= ifq.size
        fetch_stat = 0
        fetch_resume = 0
        if self._await_branch_idx >= 0:
            wp = cfg.wrong_path
            if not ifq_full and (wp == "bubbles" or
                                 (wp == "reconverge" and self._fetch_idx < n)):
                return None                  # wrong-path fetch has work
            fetch_stat = 1
        elif cycle < self._fetch_resume_cycle:
            fetch_stat = 1
            fetch_resume = self._fetch_resume_cycle
        elif self._fetch_idx < n:
            if not ifq_full:
                return None                  # normal fetch has work
            fetch_stat = 2
        # else: trace exhausted — fetch is a silent no-op.

        # ---- SPEAR mode machinery ---------------------------------------
        mode = self._mode
        drain_stall = extract_stall = False
        if mode == _COPY:
            return None                      # live-in copy counts down
        if mode == _DRAIN:
            if self._drain_satisfied():      # idempotent (pops done
                return None                  # producers), as the mode
            drain_stall = True               # tick would this cycle
        elif mode == _IDLE:
            # ``_chaining``/``_trigger_occ`` are the *live* operating
            # point (an adaptive-phase controller may have moved them),
            # mirroring the reference loop's hoisted locals exactly.
            if (cfg.spear_enabled and ifq.marked_queue
                    and (self._chaining
                         or len(ifq_slots) >= self._trigger_occ)
                    and self._retrigger_candidate() is not None):
                return None                  # a dormant d-load would fire
        else:  # _ACTIVE
            if not self._trigger_extracted and ifq.marked_queue:
                if self._extract_candidate() is not None:
                    if self._pt_inflight >= cfg.pthread_ruu_size:
                        extract_stall = True
                    else:
                        return None          # the PE would extract

        # ---- provably idle: jump to the horizon -------------------------
        horizon = cfg.max_cycles
        if events:
            nxt = min(events)
            if nxt < horizon:
                horizon = nxt
        if fetch_resume and fetch_resume < horizon:
            horizon = fetch_resume
        policy = self._policy
        if policy is not None:
            # Never jump past a policy decision boundary: clamping the
            # horizon to the boundary-processing cycle (the cycle ``c``
            # with ``(c + 1) % interval == 0``) lets the normal loop
            # bottom run the controller tick there, so decisions fire at
            # identical cycles on every kernel.  If the *current* cycle
            # is a boundary the clamp makes ``delta <= 0`` and the skip
            # is refused outright.
            pint = policy.interval
            boundary = (cycle // pint + 1) * pint - 1
            if boundary < horizon:
                horizon = boundary
        if horizon > stop:
            horizon = stop
        delta = horizon - cycle
        if delta <= 0:
            return None

        stats = self.stats
        if decode_stat == 1:
            stats.decode_stall_empty_ifq += delta
        elif decode_stat:
            stats.decode_stall_ruu_full += delta
        if fetch_stat == 1:
            stats.fetch_stall_mispredict += delta
        elif fetch_stat:
            stats.fetch_stall_ifq_full += delta
        if drain_stall:
            stats.spear.drain_wait_cycles += delta
        if extract_stall:
            stats.spear.extraction_stall_ruu_full += delta

        occ = len(ifq_slots)
        ruu = len(rob)
        in_mode = 1 if mode != _IDLE else 0
        sampler = self._sampler
        if sampler is not None:
            interval = sampler.interval
            if (cycle // interval + 1) * interval <= horizon:
                main_ts = self.mem.thread_stats[MAIN_THREAD]
                sampler.advance_idle(
                    cycle, horizon, self._committed,
                    ifq_occ_sum, occ, ruu_occ_sum, ruu,
                    mode_cycles, in_mode,
                    main_ts.accesses, main_ts.l1_misses,
                    per_thread=self._thread_counters())
        self.ff_jumps += 1
        self.ff_cycles_skipped += delta
        return (horizon, ifq_occ_sum + delta * occ,
                ruu_occ_sum + delta * ruu, mode_cycles + delta * in_mode)

    # -- side-effect-free replicas of the PE scans ------------------------

    def _retrigger_candidate(self):
        """The slot ``_try_retrigger`` would fire on, without mutating.

        ``prune_marked`` drops the maximal *prefix* of consumed/unmarked
        entries before the tail-first scan; a decoded-but-still-marked
        d-load deeper in the queue survives the prune, so the prefix must
        be replicated exactly — skipping stale entries per-slot would
        find candidates the reference never sees.
        """
        mq = self.ifq.marked_queue
        head = self.ifq.head_seq
        drop = 0
        for s in mq:
            if s.seq < head or not s.marked:
                drop += 1
            else:
                break
        pe_seq = self._pe_seq
        idx = len(mq)
        for s in reversed(mq):
            idx -= 1
            if idx < drop:
                break
            if s.seq >= pe_seq and s.marked and s.is_dload:
                return s
        return None

    def _extract_candidate(self):
        """The slot ``_extract`` would pick this cycle, without mutating
        (same prefix-prune emulation, head-first scan, no d-load bit)."""
        mq = self.ifq.marked_queue
        head = self.ifq.head_seq
        pe_seq = self._pe_seq
        dropping = True
        for s in mq:
            if dropping:
                if s.seq < head or not s.marked:
                    continue
                dropping = False
            if s.seq >= pe_seq and s.marked:
                return s
        return None
