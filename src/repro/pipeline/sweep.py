"""Batched memory-latency sweeps: one functional pass, K latency points.

A figure-9-style sweep replays the *same* trace through the *same*
machine configuration K times, varying only the memory latencies.  Run
independently, each point repays identical fixed costs: the trace-flag
walk (marked/d-load vectors) and the warmup replay through caches and
predictor.  :class:`BatchedSweepSimulator` pays them once — the flags
are computed one time and shared read-only, and the warm memory/predictor
state is built once and cloned per point (warmup is latency-independent:
``MemoryHierarchy.warm`` does no latency bookkeeping, so a clone with
re-pointed latencies is state-identical to a fresh warmup replay).

Each point then runs through a per-cycle timing kernel (fast-forward by
default — the sweep's long-latency points are exactly where it shines),
so results are byte-identical to K independent reference runs; the
equivalence suite asserts it.  Per-config pipeline state is fully
vectorized across the batch in the sense that no state is shared once a
point's run starts: every mutable structure is per-point.
"""

from __future__ import annotations

import pickle

from ..branch.predictors import make_predictor
from ..core.configs import MachineConfig
from ..core.pthread import PThreadTable
from ..functional.trace import Trace
from ..memory.hierarchy import LatencyConfig, MemoryHierarchy
from .kernel import make_simulator
from .smt import trace_flags
from .stats import PipelineResult


class BatchedSweepSimulator:
    """Run one (trace, config) pair across several latency points."""

    backend = "batched"

    def __init__(self, trace: Trace, config: MachineConfig,
                 latencies: list[LatencyConfig],
                 table: PThreadTable | None = None,
                 warmup: Trace | list | None = None,
                 kernel: str = "fast-forward"):
        if not latencies:
            raise ValueError("batched sweep needs at least one latency point")
        self.trace = trace
        self.config = config
        self.latencies = list(latencies)
        self.table = table
        self.warmup = warmup
        #: per-point cycle kernel (any :mod:`repro.pipeline.kernel` name)
        self.kernel = kernel

    def run(self) -> list[PipelineResult]:
        """Simulate every latency point; results in ``latencies`` order,
        each byte-identical to an independent reference run."""
        config = self.config
        # Shared read-only work, paid once for the whole sweep ----------
        table = self.table if (self.table is not None
                               and config.spear_enabled) \
            else PThreadTable.empty()
        flags = trace_flags(self.trace, table)
        proto_mem = MemoryHierarchy(latencies=self.latencies[0])
        predictor = make_predictor(config.predictor,
                                   table_size=config.predictor_table_size,
                                   targets={})
        if self.warmup is not None:
            for e in self.warmup:
                if e.addr >= 0:
                    proto_mem.warm(e.addr, is_write=e.is_store)
                elif e.is_cond:
                    predictor.predict_and_update(e.pc, e.taken)
            proto_mem.finish_warmup()
            predictor.stats = type(predictor.stats)()
        warm_state = pickle.dumps((proto_mem, predictor),
                                  pickle.HIGHEST_PROTOCOL)

        results = []
        for lat in self.latencies:
            mem, pred = pickle.loads(warm_state)
            # Warmup never reads latencies, so the clone plus this
            # re-point equals a fresh hierarchy warmed under ``lat``.
            mem.latencies = lat
            cfg = config if lat == config.latencies \
                else config.with_latencies(lat)
            sim = make_simulator(self.kernel, self.trace, cfg, self.table,
                                 mem, predictor=pred, flags=flags)
            results.append(sim.run())
        return results
