"""Per-interval time series of the timing model's behaviour.

End-of-run aggregates hide phase behaviour: a workload whose IPC
collapses for 10k cycles around every pointer-chase burst averages out
to "slightly slow".  The :class:`IntervalSampler` is fed cumulative
counters by the simulator every ``interval`` cycles (plus once at the
end for the partial tail) and stores per-interval deltas: IPC, average
IFQ/RUU occupancy, SPEAR mode residency and main-thread L1 miss rate.

The result (``timeline()``) is a plain dict of parallel lists so it
pickles compactly into the disk cache and renders directly as a table
(``repro analyze --timeline``).
"""

from __future__ import annotations


class IntervalSampler:
    """Collects one :class:`~repro.pipeline.stats.PipelineResult` timeline.

    The simulator calls ``take()`` with *cumulative* counters; the
    sampler differences consecutive calls, so it never reaches into
    simulator internals and stays trivially deterministic.
    """

    __slots__ = ("interval", "samples", "_last")

    def __init__(self, interval: int = 1000):
        if interval < 1:
            raise ValueError("sampling interval must be positive")
        self.interval = interval
        #: one dict per interval, in time order
        self.samples: list[dict] = []
        # cumulative counters at the previous boundary
        self._last = (0, 0, 0, 0, 0, 0, 0)

    def take(self, cycle: int, committed: int, ifq_occ_sum: int,
             ruu_occ_sum: int, mode_cycles: int, l1_accesses: int,
             l1_misses: int) -> None:
        """Record the interval ending at ``cycle`` (cumulative inputs)."""
        (p_cycle, p_committed, p_ifq, p_ruu, p_mode, p_acc,
         p_miss) = self._last
        cycles = cycle - p_cycle
        if cycles <= 0:
            return   # duplicate boundary (e.g. run ended exactly on one)
        d_acc = l1_accesses - p_acc
        self.samples.append({
            "cycle": cycle,
            "cycles": cycles,
            "committed": committed - p_committed,
            "ipc": (committed - p_committed) / cycles,
            "avg_ifq_occupancy": (ifq_occ_sum - p_ifq) / cycles,
            "avg_ruu_occupancy": (ruu_occ_sum - p_ruu) / cycles,
            "mode_residency": (mode_cycles - p_mode) / cycles,
            "l1_accesses": d_acc,
            "l1_misses": l1_misses - p_miss,
            "l1_miss_rate": (l1_misses - p_miss) / d_acc if d_acc else 0.0,
        })
        self._last = (cycle, committed, ifq_occ_sum, ruu_occ_sum,
                      mode_cycles, l1_accesses, l1_misses)

    def timeline(self) -> dict:
        """The collected series as a picklable, render-ready dict."""
        return {"interval": self.interval, "samples": list(self.samples)}
