"""Per-interval time series of the timing model's behaviour.

End-of-run aggregates hide phase behaviour: a workload whose IPC
collapses for 10k cycles around every pointer-chase burst averages out
to "slightly slow".  The :class:`IntervalSampler` is fed cumulative
counters by the simulator every ``interval`` cycles (plus once at the
end for the partial tail) and stores per-interval deltas: IPC, average
IFQ/RUU occupancy, SPEAR mode residency and main-thread L1 miss rate.

Alongside the global series the sampler keeps an optional *per-thread*
view — one parallel series per hardware thread (main program thread 0,
SPEAR p-thread 1) with instructions completed, issue share and L1 miss
rate per interval — so a timeline shows the p-thread's footprint
directly instead of folding it into the whole-machine numbers.

The result (``timeline()``) is a plain dict of parallel lists so it
pickles compactly into the disk cache and renders directly as a table
(``repro analyze --timeline``), sparkline or SVG (``repro report``).
"""

from __future__ import annotations

#: Human names of the hardware threads, indexed by thread id.
THREAD_NAMES = ("main", "pthread")


class IntervalSampler:
    """Collects one :class:`~repro.pipeline.stats.PipelineResult` timeline.

    The simulator calls ``take()`` with *cumulative* counters; the
    sampler differences consecutive calls, so it never reaches into
    simulator internals and stays trivially deterministic.

    >>> s = IntervalSampler(interval=100)
    >>> s.take(100, 80, 500, 1000, 40, 30, 6)
    >>> s.take(200, 240, 1500, 1800, 140, 90, 8)
    >>> [round(x["ipc"], 2) for x in s.samples]
    [0.8, 1.6]

    When the simulator also supplies per-thread cumulative counters
    (``completed``, ``issued``, ``l1_accesses``, ``l1_misses`` per
    hardware thread), the timeline gains a ``per_thread`` view:

    >>> s = IntervalSampler(interval=100)
    >>> s.take(100, 50, 0, 0, 0, 10, 1,
    ...        per_thread=((50, 60, 10, 1), (20, 20, 8, 4)))
    >>> tl = s.timeline()
    >>> [t["name"] for t in tl["per_thread"]]
    ['main', 'pthread']
    >>> tl["per_thread"][1]["samples"][0]["l1_miss_rate"]
    0.5
    """

    __slots__ = ("interval", "samples", "thread_samples", "_last",
                 "_last_threads")

    def __init__(self, interval: int = 1000):
        if interval < 1:
            raise ValueError("sampling interval must be positive")
        self.interval = interval
        #: one dict per interval, in time order (the global series)
        self.samples: list[dict] = []
        #: per-thread interval dicts: ``thread_samples[tid]`` is a list
        #: parallel to :attr:`samples`; empty until ``take`` first sees
        #: ``per_thread`` counters.
        self.thread_samples: list[list[dict]] = []
        # cumulative counters at the previous boundary
        self._last = (0, 0, 0, 0, 0, 0, 0)
        self._last_threads: tuple | None = None

    def take(self, cycle: int, committed: int, ifq_occ_sum: int,
             ruu_occ_sum: int, mode_cycles: int, l1_accesses: int,
             l1_misses: int,
             per_thread: tuple[tuple[int, int, int, int], ...] | None = None
             ) -> None:
        """Record the interval ending at ``cycle`` (cumulative inputs).

        ``per_thread`` optionally carries one ``(completed, issued,
        l1_accesses, l1_misses)`` cumulative tuple per hardware thread;
        when present the per-thread series advance in lockstep with the
        global one.
        """
        (p_cycle, p_committed, p_ifq, p_ruu, p_mode, p_acc,
         p_miss) = self._last
        cycles = cycle - p_cycle
        if cycles <= 0:
            return   # duplicate boundary (e.g. run ended exactly on one)
        d_acc = l1_accesses - p_acc
        self.samples.append({
            "cycle": cycle,
            "cycles": cycles,
            "committed": committed - p_committed,
            "ipc": (committed - p_committed) / cycles,
            "avg_ifq_occupancy": (ifq_occ_sum - p_ifq) / cycles,
            "avg_ruu_occupancy": (ruu_occ_sum - p_ruu) / cycles,
            "mode_residency": (mode_cycles - p_mode) / cycles,
            "l1_accesses": d_acc,
            "l1_misses": l1_misses - p_miss,
            "l1_miss_rate": (l1_misses - p_miss) / d_acc if d_acc else 0.0,
        })
        self._last = (cycle, committed, ifq_occ_sum, ruu_occ_sum,
                      mode_cycles, l1_accesses, l1_misses)
        if per_thread is not None:
            self._take_threads(cycle, cycles, per_thread)

    def advance_idle(self, cycle: int, to_cycle: int, committed: int,
                     ifq_occ_sum: int, ifq_per_cycle: int,
                     ruu_occ_sum: int, ruu_per_cycle: int,
                     mode_cycles: int, mode_per_cycle: int,
                     l1_accesses: int, l1_misses: int,
                     per_thread: tuple | None = None) -> None:
        """Record every interval boundary a fast-forward jump crosses.

        An idle jump advances from ``cycle`` to ``to_cycle`` with no
        commits and no memory traffic; only the occupancy sums and mode
        residency grow, linearly at the given per-cycle rates (their
        ``*_sum`` arguments are the cumulative values *at* ``cycle``).
        Boundaries land at every interval multiple in ``(cycle,
        to_cycle]`` and are recorded through :meth:`take`, so the
        resulting samples are byte-identical to stepping cycle by cycle.

        >>> s = IntervalSampler(interval=100)
        >>> s.take(100, 80, 500, 1000, 40, 30, 6)
        >>> s.advance_idle(130, 350, 80, 650, 5, 1300, 10, 70, 1, 30, 6)
        >>> [(x["cycle"], x["ipc"], x["avg_ifq_occupancy"])
        ...  for x in s.samples[1:]]
        [(200, 0.0, 5.0), (300, 0.0, 5.0)]
        """
        interval = self.interval
        boundary = (cycle // interval + 1) * interval
        while boundary <= to_cycle:
            d = boundary - cycle
            self.take(boundary, committed,
                      ifq_occ_sum + d * ifq_per_cycle,
                      ruu_occ_sum + d * ruu_per_cycle,
                      mode_cycles + d * mode_per_cycle,
                      l1_accesses, l1_misses, per_thread=per_thread)
            boundary += interval

    def _take_threads(self, cycle: int, cycles: int,
                      per_thread: tuple) -> None:
        prev = self._last_threads
        if prev is None:
            prev = tuple((0, 0, 0, 0) for _ in per_thread)
            self.thread_samples = [[] for _ in per_thread]
        issued_total = sum(t[1] - p[1] for t, p in zip(per_thread, prev))
        for tid, (now, before) in enumerate(zip(per_thread, prev)):
            completed = now[0] - before[0]
            issued = now[1] - before[1]
            accesses = now[2] - before[2]
            misses = now[3] - before[3]
            self.thread_samples[tid].append({
                "cycle": cycle,
                "completed": completed,
                "ipc": completed / cycles,
                "issued": issued,
                "issue_share": issued / issued_total if issued_total else 0.0,
                "l1_accesses": accesses,
                "l1_misses": misses,
                "l1_miss_rate": misses / accesses if accesses else 0.0,
            })
        self._last_threads = per_thread

    def timeline(self) -> dict:
        """The collected series as a picklable, render-ready dict.

        Keeps the original (PR 3) schema — ``interval`` plus the global
        ``samples`` list — and adds ``per_thread`` when thread-resolved
        counters were supplied: one ``{"thread", "name", "samples"}``
        entry per hardware thread, each series parallel to the global
        one.
        """
        tl = {"interval": self.interval, "samples": list(self.samples)}
        if self.thread_samples:
            tl["per_thread"] = [
                {"thread": tid,
                 "name": (THREAD_NAMES[tid] if tid < len(THREAD_NAMES)
                          else f"thread{tid}"),
                 "samples": list(series)}
                for tid, series in enumerate(self.thread_samples)]
        return tl
