"""Baseline-vs-model timeline diffing: *where* in a run a speedup lives.

Whole-run speedups (Figure 6) say a SPEAR model wins; they cannot say
whether it wins uniformly, or in three bursts around the pointer-chase
phases, or despite losing ground elsewhere.  :func:`diff_timelines`
aligns two traced runs of the *same workload* on the model run's
interval grid and, for every interval, answers two questions:

1. **How many cycles ahead is the model here?**  Both runs commit the
   same instruction stream, so at each model boundary (cycle ``c``,
   cumulative committed ``n``) the baseline's cycle count at the same
   ``n`` committed instructions is well defined (piecewise-linear
   interpolation inside the baseline interval that crosses ``n``).
   ``cycles_saved = base_cycles(n) - c`` is the cumulative win; its
   per-interval difference localizes the gain.

2. **Did pre-execution cause it?**  Each winning interval is checked
   against the model's event stream: extract / prefetch / fill events
   inside the window mean speculative work was active there
   (``"pre-execution"``); a win with no such activity is unattributable
   phase variance (``"variance"``).  Losing intervals are flagged
   ``"regression"`` and flat ones ``"neutral"``.

Runs of different length are the *normal* case (the faster model simply
has fewer intervals); a different sampling interval or a different
committed-instruction total means the series are not comparable and
raises :class:`TimelineAlignmentError` rather than silently truncating.

>>> base = {"interval": 100, "samples": [
...     {"cycle": 100, "cycles": 100, "committed": 50, "ipc": 0.5},
...     {"cycle": 200, "cycles": 100, "committed": 50, "ipc": 0.5}]}
>>> model = {"interval": 100, "samples": [
...     {"cycle": 100, "cycles": 100, "committed": 100, "ipc": 1.0}]}
>>> d = diff_timelines(base, model)
>>> d.total_cycles_saved
100.0
>>> d.rows[0]["attribution"]
'variance'
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field

from .events import EXTRACT, FILL, PREFETCH, TraceEvent

#: Event kinds that witness speculative pre-execution activity in a
#: window (PE extraction plus the speculative fills it and the hardware
#: prefetcher start).
PE_EVENT_KINDS = frozenset((EXTRACT, PREFETCH, FILL))

#: Cumulative-cycles-saved deltas smaller than this (in cycles) are
#: considered flat — interpolation noise, not a phase.
NEUTRAL_CYCLES = 0.5


class TimelineAlignmentError(ValueError):
    """Two timelines cannot be compared (different interval grid or a
    different committed-instruction total — i.e. not the same run)."""


@dataclass
class TimelineDiff:
    """An aligned baseline-vs-model comparison of two traced runs.

    ``rows`` holds one dict per model interval (see
    :func:`diff_timelines` for the keys); the summary properties
    aggregate them.  ``base_tail_cycles`` is how long the baseline kept
    running after the model finished — the visible end-to-end win.
    """

    interval: int
    workload: str = ""
    base_name: str = ""
    model_name: str = ""
    rows: list[dict] = field(default_factory=list)
    base_cycles: int = 0
    model_cycles: int = 0

    @property
    def total_cycles_saved(self) -> float:
        """Cycles the baseline needed beyond the model's total (equals
        the last row's cumulative ``cycles_saved``)."""
        return self.rows[-1]["cycles_saved"] if self.rows else 0.0

    @property
    def base_tail_cycles(self) -> int:
        """Baseline cycles remaining after the model's last boundary."""
        return self.base_cycles - self.model_cycles

    @property
    def speedup(self) -> float:
        return self.base_cycles / self.model_cycles if self.model_cycles \
            else 0.0

    def attribution_summary(self) -> dict[str, int]:
        """Interval counts per attribution class, in a fixed key order."""
        out = {"pre-execution": 0, "variance": 0, "regression": 0,
               "neutral": 0}
        for row in self.rows:
            out[row["attribution"]] += 1
        return out

    @property
    def attributed_fraction(self) -> float:
        """Share of the total win earned in pre-execution intervals."""
        won = sum(r["saved_delta"] for r in self.rows
                  if r["saved_delta"] > 0)
        if not won:
            return 0.0
        return sum(r["saved_delta"] for r in self.rows
                   if r["attribution"] == "pre-execution") / won


class SuiteInvariantError(ValueError):
    """A :class:`SuiteDiff`'s stored aggregates disagree with what its
    raw per-workload cycle counts imply — the suite report would print
    numbers that don't follow from its own data."""


@dataclass
class SuiteDiff:
    """Suite-wide aggregate over one :class:`TimelineDiff` per workload.

    The headline number is :attr:`geomean_speedup`, defined *exactly* as
    product-of-ratios\\ :sup:`1/n` over the per-workload cycle-count
    ratios.  :meth:`validate` recomputes every derived figure from the
    raw cycle counts and raises :class:`SuiteInvariantError` on any
    disagreement, so a rendered report is self-consistent by
    construction.

    ``rows`` hold one dict per workload: ``workload``, ``base_cycles``,
    ``model_cycles``, ``base_ipc``, ``model_ipc``, ``speedup``,
    ``cycles_saved``, ``attributed_fraction``, ``pe_intervals``,
    ``intervals`` and ``saved_series`` (the cumulative cycles-saved
    curve, for small-multiples rendering).
    """

    interval: int
    base_name: str = ""
    model_name: str = ""
    rows: list[dict] = field(default_factory=list)

    @classmethod
    def from_diffs(cls, diffs: list[TimelineDiff],
                   base_ipcs: list[float] | None = None,
                   model_ipcs: list[float] | None = None) -> "SuiteDiff":
        """Aggregate per-workload diffs (all sharing one interval grid
        and one baseline/model pair).  ``base_ipcs``/``model_ipcs`` are
        the whole-run IPCs in the same order; omitted, they are derived
        from each diff's own committed totals and cycle counts."""
        if not diffs:
            raise ValueError("suite diff needs at least one workload")
        first = diffs[0]
        for d in diffs[1:]:
            if d.interval != first.interval:
                raise TimelineAlignmentError(
                    f"suite mixes sampling intervals: {first.interval} "
                    f"({first.workload}) vs {d.interval} ({d.workload})")
            if (d.base_name, d.model_name) != (first.base_name,
                                               first.model_name):
                raise TimelineAlignmentError(
                    f"suite mixes config pairs: {first.base_name}->"
                    f"{first.model_name} vs {d.base_name}->{d.model_name}")
        suite = cls(interval=first.interval, base_name=first.base_name,
                    model_name=first.model_name)
        for i, d in enumerate(diffs):
            committed = d.rows[-1]["committed"] if d.rows else 0
            base_ipc = (base_ipcs[i] if base_ipcs is not None
                        else committed / d.base_cycles if d.base_cycles
                        else 0.0)
            model_ipc = (model_ipcs[i] if model_ipcs is not None
                         else committed / d.model_cycles if d.model_cycles
                         else 0.0)
            suite.rows.append({
                "workload": d.workload,
                "base_cycles": d.base_cycles,
                "model_cycles": d.model_cycles,
                "base_ipc": base_ipc,
                "model_ipc": model_ipc,
                "speedup": d.speedup,
                "cycles_saved": d.base_cycles - d.model_cycles,
                "attributed_fraction": d.attributed_fraction,
                "pe_intervals": d.attribution_summary()["pre-execution"],
                "intervals": len(d.rows),
                "saved_series": [r["cycles_saved"] for r in d.rows],
            })
        return suite

    @property
    def geomean_speedup(self) -> float:
        """Geometric mean of per-workload speedups — by definition the
        product of the cycle-count ratios raised to ``1/n``."""
        product = 1.0
        for row in self.rows:
            product *= row["speedup"]
        return product ** (1.0 / len(self.rows)) if self.rows else 0.0

    def validate(self) -> "SuiteDiff":
        """Re-derive every aggregate from raw cycle counts; raise
        :class:`SuiteInvariantError` on any exact mismatch.  Returns
        ``self`` so call sites can chain ``suite.validate()``."""
        if not self.rows:
            raise SuiteInvariantError("suite diff has no workloads")
        product = 1.0
        for row in self.rows:
            if not row["model_cycles"]:
                raise SuiteInvariantError(
                    f"{row['workload']}: model run has zero cycles")
            ratio = row["base_cycles"] / row["model_cycles"]
            if row["speedup"] != ratio:
                raise SuiteInvariantError(
                    f"{row['workload']}: stored speedup {row['speedup']!r} "
                    f"!= base/model cycle ratio {ratio!r}")
            saved = row["base_cycles"] - row["model_cycles"]
            if row["cycles_saved"] != saved:
                raise SuiteInvariantError(
                    f"{row['workload']}: stored cycles_saved "
                    f"{row['cycles_saved']!r} != base-model gap {saved!r}")
            product *= ratio
        expected = product ** (1.0 / len(self.rows))
        if self.geomean_speedup != expected:
            raise SuiteInvariantError(
                f"geomean {self.geomean_speedup!r} != product-of-ratios^"
                f"(1/{len(self.rows)}) = {expected!r}")
        return self


def _cycle_at_committed(samples: list[dict], target: int) -> float:
    """Cycle at which a run first reached ``target`` cumulative committed
    instructions, interpolating linearly inside the crossing interval."""
    prev_cycle = 0
    cum = 0
    for s in samples:
        nxt = cum + s["committed"]
        if nxt >= target:
            if s["committed"] == 0:
                return float(prev_cycle)
            frac = (target - cum) / s["committed"]
            return prev_cycle + frac * s["cycles"]
        prev_cycle = s["cycle"]
        cum = nxt
    return float(prev_cycle)


def count_pe_events(events: list[TraceEvent],
                    boundaries: list[int]) -> list[dict]:
    """Per-window counts of pre-execution activity.

    ``boundaries`` are the model run's interval end cycles (ascending);
    window ``i`` covers ``(boundaries[i-1], boundaries[i]]`` with the
    first window starting at cycle 0.  Events past the last boundary are
    ignored.
    """
    counts = [{"extracts": 0, "prefetches": 0, "fills": 0}
              for _ in boundaries]
    if not boundaries:
        return counts
    for e in events:
        if e.kind not in PE_EVENT_KINDS:
            continue
        # Window i holds cycles (boundaries[i-1], boundaries[i]]; events
        # are emitted at cycle < boundary by construction.
        i = bisect_left(boundaries, e.cycle + 1)
        if i >= len(counts):
            continue
        if e.kind == EXTRACT:
            counts[i]["extracts"] += 1
        elif e.kind == PREFETCH:
            counts[i]["prefetches"] += 1
        else:
            counts[i]["fills"] += 1
    return counts


def diff_timelines(base: dict, model: dict,
                   model_events: list[TraceEvent] | None = None, *,
                   workload: str = "", base_name: str = "",
                   model_name: str = "") -> TimelineDiff:
    """Align two ``PipelineResult.timeline`` dicts and diff them.

    ``base``/``model`` are the timelines of a baseline and a candidate
    run of the same workload; ``model_events`` is the model run's trace
    event stream (used for pre-execution attribution — without it every
    win degrades to ``"variance"``).

    Returns a :class:`TimelineDiff` whose ``rows`` each carry:

    ``cycle``, ``committed``
        the model boundary and cumulative committed instructions there;
    ``ipc_base``, ``ipc_model``, ``ipc_delta``
        interval IPCs on the shared grid (the baseline interval at the
        same *index*, i.e. the same wall-clock window);
    ``base_cycles_at``, ``cycles_saved``, ``saved_delta``
        the interpolated baseline cycle count at the same committed
        total, the cumulative win, and this interval's contribution;
    ``extracts``, ``prefetches``, ``fills``, ``pt_completed``
        speculative activity inside the window;
    ``attribution``
        ``"pre-execution"`` / ``"variance"`` / ``"regression"`` /
        ``"neutral"``.

    Raises :class:`TimelineAlignmentError` when the sampling intervals
    differ or the two runs committed different instruction totals.
    """
    if base.get("interval") != model.get("interval"):
        raise TimelineAlignmentError(
            f"sampling intervals differ: baseline {base.get('interval')} "
            f"vs model {model.get('interval')} — re-trace both runs with "
            f"the same --interval")
    base_samples = base["samples"]
    model_samples = model["samples"]
    base_total = sum(s["committed"] for s in base_samples)
    model_total = sum(s["committed"] for s in model_samples)
    if base_total != model_total:
        raise TimelineAlignmentError(
            f"runs committed different instruction totals: baseline "
            f"{base_total} vs model {model_total} — not the same workload "
            f"or scale")

    boundaries = [s["cycle"] for s in model_samples]
    pe = count_pe_events(model_events or [], boundaries)
    pt_series = None
    for t in model.get("per_thread", ()):
        if t.get("name") == "pthread":
            pt_series = t["samples"]

    diff = TimelineDiff(
        interval=base["interval"], workload=workload,
        base_name=base_name, model_name=model_name,
        base_cycles=base_samples[-1]["cycle"] if base_samples else 0,
        model_cycles=model_samples[-1]["cycle"] if model_samples else 0)

    committed = 0
    prev_saved = 0.0
    for i, s in enumerate(model_samples):
        committed += s["committed"]
        base_cycles_at = _cycle_at_committed(base_samples, committed)
        saved = base_cycles_at - s["cycle"]
        saved_delta = saved - prev_saved
        prev_saved = saved
        ipc_base = base_samples[i]["ipc"] if i < len(base_samples) else 0.0
        pe_active = pe[i]["extracts"] + pe[i]["fills"] > 0
        if saved_delta > NEUTRAL_CYCLES:
            attribution = "pre-execution" if pe_active else "variance"
        elif saved_delta < -NEUTRAL_CYCLES:
            attribution = "regression"
        else:
            attribution = "neutral"
        diff.rows.append({
            "cycle": s["cycle"],
            "committed": committed,
            "ipc_base": ipc_base,
            "ipc_model": s["ipc"],
            "ipc_delta": s["ipc"] - ipc_base,
            "base_cycles_at": base_cycles_at,
            "cycles_saved": saved,
            "saved_delta": saved_delta,
            "extracts": pe[i]["extracts"],
            "prefetches": pe[i]["prefetches"],
            "fills": pe[i]["fills"],
            "pt_completed": (pt_series[i]["completed"]
                             if pt_series and i < len(pt_series) else 0),
            "attribution": attribution,
        })
    return diff
