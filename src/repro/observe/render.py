"""Renderers for timelines and timeline diffs: sparklines, SVG, markdown.

Three output layers, all dependency-free and byte-deterministic (fixed
float formatting, no timestamps, no environment leakage — the property
the render test suite pins so ``repro report`` output can be diffed and
cached):

* :func:`sparkline` / :func:`render_timeline_text` — unicode terminal
  sparklines, the quick look (``repro analyze --timeline`` tables are
  the precise one);
* :func:`render_timeline_svg` / :func:`render_diff_svg` — self-contained
  SVG documents (no external CSS, fonts or scripts), embeddable in
  markdown and checked into ``examples/``;
* :func:`render_report` — the full ``repro report`` markdown document:
  summary, sparklines, per-interval attribution table, per-thread
  series, fill timeliness and the embedded SVG.
"""

from __future__ import annotations

from .compare import SuiteDiff, TimelineDiff

#: Eight-level unicode bars, lowest to highest.
SPARK_CHARS = "▁▂▃▄▅▆▇█"

#: Fixed SVG palette (series line colours, then attribution fills).
_COLORS = {
    "base": "#888888",
    "model": "#1f77b4",
    "pthread": "#d62728",
    "saved": "#2ca02c",
    "pre-execution": "#2ca02c",
    "variance": "#bcbd22",
    "regression": "#d62728",
    "neutral": "#cccccc",
}


def sparkline(values: list[float], lo: float | None = None,
              hi: float | None = None) -> str:
    """Render ``values`` as one character per point.

    The scale spans ``[lo, hi]`` (defaulting to the data's own range), so
    two sparklines drawn with an explicit shared range are visually
    comparable.

    >>> sparkline([0, 1, 2, 3, 4, 5, 6, 7])
    '▁▂▃▄▅▆▇█'
    >>> sparkline([1.0, 1.0])
    '▁▁'
    """
    if not values:
        return ""
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    span = hi - lo
    if span <= 0:
        return SPARK_CHARS[0] * len(values)
    top = len(SPARK_CHARS) - 1
    return "".join(
        SPARK_CHARS[min(top, max(0, int((v - lo) / span * top + 0.5)))]
        for v in values)


def render_timeline_text(timeline: dict, title: str = "timeline") -> str:
    """Sparkline block of one timeline's series, one labeled row each."""
    samples = timeline["samples"]
    lines = [f"{title} — {len(samples)} x {timeline['interval']} cycles"]
    rows = [
        ("ipc", [s["ipc"] for s in samples]),
        ("ifq", [s["avg_ifq_occupancy"] for s in samples]),
        ("ruu", [s["avg_ruu_occupancy"] for s in samples]),
        ("mode", [s["mode_residency"] for s in samples]),
        ("l1 miss", [s["l1_miss_rate"] for s in samples]),
    ]
    for t in timeline.get("per_thread", ()):
        series = t["samples"]
        rows.append((f"{t['name']} ipc", [s["ipc"] for s in series]))
        rows.append((f"{t['name']} issue",
                     [s["issue_share"] for s in series]))
    width = max(len(label) for label, _ in rows)
    for label, values in rows:
        lo, hi = (min(values), max(values)) if values else (0.0, 0.0)
        lines.append(f"{label:<{width}} |{sparkline(values)}| "
                     f"{lo:.3f}..{hi:.3f}")
    return "\n".join(lines)


def render_diff_text(diff: TimelineDiff) -> str:
    """Sparkline block of a diff: both IPCs and the cumulative win."""
    ipc_base = [r["ipc_base"] for r in diff.rows]
    ipc_model = [r["ipc_model"] for r in diff.rows]
    saved = [r["cycles_saved"] for r in diff.rows]
    lo = min(ipc_base + ipc_model, default=0.0)
    hi = max(ipc_base + ipc_model, default=0.0)
    marks = "".join(
        "#" if r["attribution"] == "pre-execution" else
        "~" if r["attribution"] == "variance" else
        "-" if r["attribution"] == "regression" else " "
        for r in diff.rows)
    width = len("cycles saved")
    lines = [
        f"{diff.workload or 'diff'} — {diff.base_name or 'base'} vs "
        f"{diff.model_name or 'model'}, {len(diff.rows)} x "
        f"{diff.interval} cycles",
        f"{'base ipc':<{width}} |{sparkline(ipc_base, lo, hi)}|",
        f"{'model ipc':<{width}} |{sparkline(ipc_model, lo, hi)}|",
        f"{'cycles saved':<{width}} |{sparkline(saved)}| "
        f"total {diff.total_cycles_saved:.0f}",
        f"{'attribution':<{width}} |{marks}| "
        f"(# pre-execution, ~ variance, - regression)",
    ]
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# SVG
# ---------------------------------------------------------------------------

_W, _H = 720, 120          # panel plot area
_PAD_L, _PAD_T = 60, 24    # per-panel padding (label gutter / title strip)
_PANEL_GAP = 16


def _fmt(v: float) -> str:
    """Fixed-precision coordinate formatting (the determinism anchor)."""
    return f"{v:.2f}"


def _polyline(xs: list[float], ys: list[float], color: str,
              width: float = 1.5) -> str:
    pts = " ".join(f"{_fmt(x)},{_fmt(y)}" for x, y in zip(xs, ys))
    return (f'<polyline fill="none" stroke="{color}" '
            f'stroke-width="{width}" points="{pts}"/>')


def _scale(values: list[float], lo: float, hi: float, y0: float) -> list:
    span = (hi - lo) or 1.0
    return [y0 + _H - (v - lo) / span * _H for v in values]


def _panel_header(y0: float, title: str, lo: float, hi: float) -> list[str]:
    return [
        f'<text x="{_PAD_L}" y="{_fmt(y0 - 8)}" font-size="11" '
        f'font-family="monospace" fill="#333333">{title}</text>',
        f'<text x="{_PAD_L - 6}" y="{_fmt(y0 + 10)}" font-size="9" '
        f'text-anchor="end" font-family="monospace" '
        f'fill="#666666">{hi:.2f}</text>',
        f'<text x="{_PAD_L - 6}" y="{_fmt(y0 + _H)}" font-size="9" '
        f'text-anchor="end" font-family="monospace" '
        f'fill="#666666">{lo:.2f}</text>',
        f'<rect x="{_PAD_L}" y="{_fmt(y0)}" width="{_W}" height="{_H}" '
        f'fill="none" stroke="#dddddd"/>',
    ]


def _svg_document(body: list[str], height: int, title: str) -> str:
    head = (f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{_W + _PAD_L + 20}" height="{height}" '
            f'viewBox="0 0 {_W + _PAD_L + 20} {height}">\n'
            f'<title>{title}</title>\n'
            f'<rect width="100%" height="100%" fill="#ffffff"/>')
    return head + "\n" + "\n".join(body) + "\n</svg>\n"


def _xs(n: int) -> list[float]:
    if n <= 1:
        return [_PAD_L + _W / 2.0] * n
    step = _W / (n - 1)
    return [_PAD_L + i * step for i in range(n)]


def render_timeline_svg(timeline: dict, title: str = "timeline") -> str:
    """One traced run as a stacked-panel SVG: IPC (global + per-thread),
    SPEAR mode residency, and L1 miss rate."""
    samples = timeline["samples"]
    xs = _xs(len(samples))
    body: list[str] = []
    y0 = _PAD_T

    ipc = [s["ipc"] for s in samples]
    series = [("model", ipc)]
    for t in timeline.get("per_thread", ()):
        if t["thread"] == 1:
            series.append(("pthread", [s["ipc"] for s in t["samples"]]))
    lo = 0.0
    hi = max((max(v) for _, v in series if v), default=1.0) or 1.0
    body += _panel_header(y0, f"{title}: IPC per interval "
                              f"(blue main, red p-thread)", lo, hi)
    for key, values in series:
        body.append(_polyline(xs, _scale(values, lo, hi, y0),
                              _COLORS["model" if key == "model" else key]))
    y0 += _H + _PANEL_GAP + _PAD_T

    mode = [s["mode_residency"] for s in samples]
    body += _panel_header(y0, "SPEAR mode residency", 0.0, 1.0)
    body.append(_polyline(xs, _scale(mode, 0.0, 1.0, y0),
                          _COLORS["saved"]))
    y0 += _H + _PANEL_GAP + _PAD_T

    miss = [s["l1_miss_rate"] for s in samples]
    hi = max(miss, default=1.0) or 1.0
    body += _panel_header(y0, "main-thread L1 miss rate", 0.0, hi)
    body.append(_polyline(xs, _scale(miss, 0.0, hi, y0),
                          _COLORS["regression"]))
    return _svg_document(body, y0 + _H + _PAD_T, title)


def render_diff_svg(diff: TimelineDiff, title: str = "") -> str:
    """A :class:`TimelineDiff` as a stacked-panel SVG.

    Three panels on the model run's interval grid: interval IPC of both
    runs, cumulative cycles saved, and per-interval saved cycles as bars
    coloured by attribution (green pre-execution, olive variance, red
    regression).
    """
    title = title or (f"{diff.workload}: {diff.base_name} vs "
                      f"{diff.model_name}")
    rows = diff.rows
    xs = _xs(len(rows))
    body: list[str] = []
    y0 = _PAD_T

    ipc_base = [r["ipc_base"] for r in rows]
    ipc_model = [r["ipc_model"] for r in rows]
    hi = max(ipc_base + ipc_model, default=1.0) or 1.0
    body += _panel_header(y0, f"{title} — interval IPC (grey base, "
                              f"blue model)", 0.0, hi)
    body.append(_polyline(xs, _scale(ipc_base, 0.0, hi, y0),
                          _COLORS["base"]))
    body.append(_polyline(xs, _scale(ipc_model, 0.0, hi, y0),
                          _COLORS["model"]))
    y0 += _H + _PANEL_GAP + _PAD_T

    saved = [r["cycles_saved"] for r in rows]
    lo = min(0.0, min(saved, default=0.0))
    hi = max(saved, default=1.0) or 1.0
    body += _panel_header(y0, f"cumulative cycles saved "
                              f"(total {diff.total_cycles_saved:.0f})",
                          lo, hi)
    body.append(_polyline(xs, _scale(saved, lo, hi, y0), _COLORS["saved"],
                          width=2.0))
    y0 += _H + _PANEL_GAP + _PAD_T

    deltas = [r["saved_delta"] for r in rows]
    lo = min(0.0, min(deltas, default=0.0))
    hi = max(0.0, max(deltas, default=0.0)) or 1.0
    body += _panel_header(y0, "per-interval cycles saved, by attribution",
                          lo, hi)
    span = (hi - lo) or 1.0
    zero_y = y0 + _H - (0.0 - lo) / span * _H
    bar_w = max(1.0, _W / max(1, len(rows)) - 1.0)
    for i, r in enumerate(rows):
        v = r["saved_delta"]
        top = y0 + _H - (max(v, 0.0) - lo) / span * _H
        h = abs(v) / span * _H
        body.append(
            f'<rect x="{_fmt(xs[i] - bar_w / 2)}" y="{_fmt(top)}" '
            f'width="{_fmt(bar_w)}" height="{_fmt(h)}" '
            f'fill="{_COLORS[r["attribution"]]}"/>')
    body.append(_polyline([_PAD_L, _PAD_L + _W], [zero_y, zero_y],
                          "#999999", width=0.5))
    return _svg_document(body, y0 + _H + _PAD_T, title)


# Small-multiples grid geometry (suite SVG).
_MINI_W, _MINI_H = 228, 72
_MINI_COLS = 3
_MINI_GAP_X = 18
_MINI_GAP_Y = 44   # vertical slot above each mini panel (label strip)


def render_suite_svg(suite: SuiteDiff, title: str = "") -> str:
    """A :class:`SuiteDiff` as one SVG: a speedup bar panel (dashed
    geomean rule, thin parity rule at 1.0x) over a small-multiples grid
    — one mini panel per workload showing its cumulative cycles-saved
    curve.  Deterministic like every renderer here: fixed formatting,
    fixed palette, no timestamps.
    """
    title = title or (f"suite: {suite.base_name} vs {suite.model_name} "
                      f"({len(suite.rows)} workloads)")
    body: list[str] = []
    y0 = _PAD_T

    speedups = [r["speedup"] for r in suite.rows]
    hi = max(speedups + [suite.geomean_speedup, 1.0], default=1.0)
    body += _panel_header(
        y0, f"{title} — speedup per workload "
            f"(dashed geomean {suite.geomean_speedup:.3f}x)", 0.0, hi)
    slot = _W / max(1, len(suite.rows))
    bar_w = max(2.0, min(28.0, slot * 0.6))
    for i, r in enumerate(suite.rows):
        cx = _PAD_L + (i + 0.5) * slot
        h = r["speedup"] / hi * _H
        body.append(
            f'<rect x="{_fmt(cx - bar_w / 2)}" y="{_fmt(y0 + _H - h)}" '
            f'width="{_fmt(bar_w)}" height="{_fmt(h)}" '
            f'fill="{_COLORS["model"]}"/>')
        body.append(
            f'<text x="{_fmt(cx)}" y="{_fmt(y0 + _H + 12)}" font-size="9" '
            f'text-anchor="middle" font-family="monospace" '
            f'fill="#333333">{r["workload"]}</text>')
    parity_y = y0 + _H - 1.0 / hi * _H
    body.append(_polyline([_PAD_L, _PAD_L + _W], [parity_y, parity_y],
                          "#999999", width=0.5))
    geo_y = y0 + _H - suite.geomean_speedup / hi * _H
    body.append(
        f'<polyline fill="none" stroke="{_COLORS["saved"]}" '
        f'stroke-width="1.0" stroke-dasharray="4,3" '
        f'points="{_fmt(_PAD_L)},{_fmt(geo_y)} '
        f'{_fmt(_PAD_L + _W)},{_fmt(geo_y)}"/>')
    y0 += _H + 16 + _PANEL_GAP

    for i, r in enumerate(suite.rows):
        col = i % _MINI_COLS
        x0 = _PAD_L + col * (_MINI_W + _MINI_GAP_X)
        py0 = y0 + (i // _MINI_COLS) * (_MINI_H + _MINI_GAP_Y) + 14
        body.append(
            f'<text x="{_fmt(x0)}" y="{_fmt(py0 - 4)}" font-size="10" '
            f'font-family="monospace" fill="#333333">{r["workload"]} '
            f'{r["speedup"]:.2f}x, saved {r["cycles_saved"]}</text>')
        body.append(
            f'<rect x="{_fmt(x0)}" y="{_fmt(py0)}" width="{_MINI_W}" '
            f'height="{_MINI_H}" fill="none" stroke="#dddddd"/>')
        series = [float(v) for v in r["saved_series"]] or [0.0]
        n = len(series)
        if n == 1:
            xs = [x0 + _MINI_W / 2.0]
        else:
            xs = [x0 + j * (_MINI_W / (n - 1)) for j in range(n)]
        lo = min(0.0, min(series))
        span = (max(series) - lo) or 1.0
        ys = [py0 + _MINI_H - (v - lo) / span * _MINI_H for v in series]
        body.append(_polyline(xs, ys, _COLORS["saved"]))
    grid_rows = -(-len(suite.rows) // _MINI_COLS)
    height = y0 + grid_rows * (_MINI_H + _MINI_GAP_Y) + _PAD_T
    return _svg_document(body, height, title)


# ---------------------------------------------------------------------------
# Markdown report
# ---------------------------------------------------------------------------

def _md_table(columns: list[str], rows: list[list[str]]) -> str:
    out = ["| " + " | ".join(columns) + " |",
           "|" + "|".join("---" for _ in columns) + "|"]
    out += ["| " + " | ".join(row) + " |" for row in rows]
    return "\n".join(out)


def _fills_table(fills: dict) -> str:
    rows = []
    for source in sorted(fills):
        f = fills[source]
        if not f["attempts"]:
            continue
        pct = f["timely"] / f["fills"] * 100 if f["fills"] else 0.0
        rows.append([source, str(f["fills"]), str(f["timely"]),
                     str(f["late"]), str(f["unused"]), str(f["redundant"]),
                     f"{pct:.1f}%"])
    if not rows:
        return "_no speculative fills in this run_"
    return _md_table(["source", "fills", "timely", "late", "unused",
                      "redundant", "timely %"], rows)


#: Diff-table rows beyond this are elided (head + tail kept) so reports
#: on billion-cycle runs stay readable; the elision is stated inline.
MAX_DIFF_ROWS = 64


def render_report(diff: TimelineDiff, model_timeline: dict, *,
                  model_fills: dict | None = None,
                  base_ipc: float = 0.0, model_ipc: float = 0.0) -> str:
    """Assemble the full ``repro report`` markdown document.

    Everything is passed as plain data (timeline dicts, the memory
    snapshot's ``fills`` section) so this layer stays independent of the
    harness; ``repro report`` and ``build_report`` in the harness do the
    gathering.
    """
    summary = diff.attribution_summary()
    lines = [
        f"# repro report — {diff.workload}: {diff.base_name} vs "
        f"{diff.model_name}",
        "",
        f"- sampling interval: {diff.interval} cycles",
        f"- baseline: {diff.base_cycles} cycles (IPC {base_ipc:.3f})",
        f"- model: {diff.model_cycles} cycles (IPC {model_ipc:.3f}), "
        f"speedup {diff.speedup:.3f}x",
        f"- cycles saved: {diff.total_cycles_saved:.0f} "
        f"({diff.base_tail_cycles} after the model finished)",
        f"- intervals: {summary['pre-execution']} pre-execution, "
        f"{summary['variance']} variance, {summary['regression']} "
        f"regression, {summary['neutral']} neutral; "
        f"{diff.attributed_fraction * 100:.1f}% of the win in "
        f"pre-execution intervals",
        "",
        "## Timelines",
        "",
        "```",
        render_diff_text(diff),
        "```",
        "",
        "```",
        render_timeline_text(model_timeline, diff.model_name),
        "```",
        "",
        "## Per-interval attribution",
        "",
    ]
    rows = diff.rows
    elided = 0
    if len(rows) > MAX_DIFF_ROWS:
        head = MAX_DIFF_ROWS // 2
        elided = len(rows) - 2 * head
        rows = rows[:head] + rows[-head:]
    table_rows = [
        [str(r["cycle"]), str(r["committed"]), f"{r['ipc_base']:.3f}",
         f"{r['ipc_model']:.3f}", f"{r['cycles_saved']:.0f}",
         f"{r['saved_delta']:+.0f}", str(r["extracts"]), str(r["fills"]),
         str(r["pt_completed"]), r["attribution"]]
        for r in rows]
    lines.append(_md_table(
        ["cycle", "committed", "ipc base", "ipc model", "saved (cum)",
         "saved Δ", "extracts", "fills", "pt instrs", "attribution"],
        table_rows))
    if elided:
        lines.append("")
        lines.append(f"_{elided} middle intervals elided "
                     f"(of {len(diff.rows)} total)_")

    per_thread = model_timeline.get("per_thread")
    if per_thread:
        lines += ["", f"## Per-thread series ({diff.model_name})", ""]
        for t in per_thread:
            series = t["samples"]
            total_completed = sum(s["completed"] for s in series)
            total_issued = sum(s["issued"] for s in series)
            misses = sum(s["l1_misses"] for s in series)
            accesses = sum(s["l1_accesses"] for s in series)
            rate = misses / accesses * 100 if accesses else 0.0
            lines.append(
                f"- **{t['name']}** (thread {t['thread']}): "
                f"{total_completed} completed, {total_issued} issued, "
                f"L1 miss rate {rate:.1f}%  ")
            lines.append(f"  `ipc   "
                         f"{sparkline([s['ipc'] for s in series])}`  ")
            lines.append(f"  `issue "
                         f"{sparkline([s['issue_share'] for s in series])}`")

    if model_fills is not None:
        lines += ["", f"## Fill timeliness ({diff.model_name})", "",
                  _fills_table(model_fills)]

    lines += ["", "## Figure", "", render_diff_svg(diff), ""]
    return "\n".join(lines)


def render_suite_report(suite: SuiteDiff) -> str:
    """Assemble the ``repro report --suite`` markdown document: the
    per-workload speedup table (with the geomean row the suite's
    invariant check guarantees is consistent), cumulative-win
    sparklines, and the embedded small-multiples SVG."""
    lines = [
        f"# repro suite report — {suite.base_name} vs {suite.model_name}",
        "",
        f"- workloads: {len(suite.rows)}",
        f"- sampling interval: {suite.interval} cycles",
        f"- geomean speedup: {suite.geomean_speedup:.3f}x",
        "",
        "## Per-workload speedups",
        "",
    ]
    table_rows = [
        [r["workload"], str(r["base_cycles"]), str(r["model_cycles"]),
         f"{r['base_ipc']:.3f}", f"{r['model_ipc']:.3f}",
         f"{r['speedup']:.3f}x", str(r["cycles_saved"]),
         f"{r['pe_intervals']}/{r['intervals']}",
         f"{r['attributed_fraction'] * 100:.1f}%"]
        for r in suite.rows]
    table_rows.append(
        ["**geomean**", "", "", "", "",
         f"**{suite.geomean_speedup:.3f}x**", "", "", ""])
    lines.append(_md_table(
        ["workload", "base cycles", "model cycles", "base ipc", "model ipc",
         "speedup", "saved", "PE intervals", "attributed"],
        table_rows))
    lines += ["", "## Cumulative cycles saved", ""]
    width = max((len(r["workload"]) for r in suite.rows), default=0)
    lines.append("```")
    for r in suite.rows:
        lines.append(f"{r['workload']:<{width}} "
                     f"|{sparkline(r['saved_series'])}| "
                     f"total {r['cycles_saved']}")
    lines.append("```")
    lines += ["", "## Figure", "", render_suite_svg(suite), ""]
    return "\n".join(lines)
