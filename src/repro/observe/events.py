"""Structured pipeline trace events.

One :class:`TraceEvent` is emitted per observable pipeline happening —
an instruction moving through a stage, a SPEAR mode transition, a
prefetch decision.  Events are plain named tuples: cheap to create in
the simulator's hot loop, picklable (so traced runs cache like results),
and deterministically serializable (so two runs of the same workload,
seed and config produce byte-identical streams — the property the
determinism suite pins).

``info`` carries the kind-specific detail as a short string ("IDLE->DRAIN"
for mode transitions, "fill"/"redundant" for prefetch probes, the
resolved latency for completions) so every event has one fixed shape.
"""

from __future__ import annotations

import json
from typing import Iterable, NamedTuple

# Event kinds, in rough pipeline order.  String constants (not an enum):
# they serialize as themselves and compare by identity in filters.
FETCH = "fetch"          #: instruction entered the IFQ
DECODE = "decode"        #: instruction decoded/renamed into the RUU
ISSUE = "issue"          #: instruction issued to a functional unit
COMPLETE = "complete"    #: instruction finished executing
COMMIT = "commit"        #: instruction retired from the ROB head
MISPREDICT = "mispredict"  #: conditional branch mispredicted / resolved
MODE = "mode"            #: SPEAR pre-execution mode transition
EXTRACT = "extract"      #: PE copied a marked IFQ entry into the p-thread
PREFETCH = "prefetch"    #: hardware prefetcher proposed a target
FILL = "fill"            #: a prefetch actually started an L1 fill
POLICY = "policy-decision"  #: adaptive trigger policy changed/held course

EVENT_KINDS = (FETCH, DECODE, ISSUE, COMPLETE, COMMIT, MISPREDICT, MODE,
               EXTRACT, PREFETCH, FILL, POLICY)

#: SPEAR mode names, indexed by the timing model's internal state codes.
MODE_NAMES = ("IDLE", "DRAIN", "COPY", "ACTIVE")


class TraceEvent(NamedTuple):
    """One observable pipeline event.

    ``thread`` is 0 (main), 1 (p-thread) or -1 (not thread-specific);
    ``pc``/``trace_idx`` are -1 when the event has no instruction.
    """

    cycle: int
    kind: str
    thread: int = -1
    pc: int = -1
    trace_idx: int = -1
    info: str = ""

    def to_json(self) -> str:
        """Canonical single-line JSON — the byte format of every sink and
        of ``repro trace``, fixed so streams compare byte-for-byte."""
        return (f'{{"cycle":{self.cycle},"kind":"{self.kind}",'
                f'"thread":{self.thread},"pc":{self.pc},'
                f'"trace_idx":{self.trace_idx},"info":{json.dumps(self.info)}}}')

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        d = json.loads(line)
        return cls(d["cycle"], d["kind"], d["thread"], d["pc"],
                   d["trace_idx"], d["info"])


#: Job lifecycle states, in forward order — the state machine of one
#: ``repro serve`` job.  Shared constants so the serve journal, the wire
#: protocol and the chaos tests all speak the same vocabulary.
JOB_PENDING = "PENDING"    #: admitted, queued behind the worker fleet
JOB_RUNNING = "RUNNING"    #: handed to the fleet (attempt in flight)
JOB_DONE = "DONE"          #: result persisted in the shared cache
JOB_FAILED = "FAILED"      #: retry budget exhausted; error recorded

JOB_STATES = (JOB_PENDING, JOB_RUNNING, JOB_DONE, JOB_FAILED)


class JobEvent(NamedTuple):
    """One job-lifecycle happening on the serve daemon.

    The serve counterpart of :class:`TraceEvent`: fixed shape, canonical
    single-line JSON, deterministically ordered within a job (``seq`` is
    the daemon's monotonic event counter).  ``detail`` carries the
    transition-specific context — the dedup verdict, the worker error,
    the re-adoption reason after a daemon restart.
    """

    seq: int
    job: str
    state: str
    detail: str = ""

    def to_json(self) -> str:
        return (f'{{"seq":{self.seq},"job":"{self.job}",'
                f'"state":"{self.state}","detail":{json.dumps(self.detail)}}}')

    @classmethod
    def from_json(cls, line: str) -> "JobEvent":
        d = json.loads(line)
        return cls(d["seq"], d["job"], d["state"], d["detail"])


def serialize_events(events: Iterable[TraceEvent]) -> str:
    """Render an event stream as canonical JSONL (one event per line,
    trailing newline).  Byte-identical for identical streams."""
    return "".join(e.to_json() + "\n" for e in events)


def filter_events(events: Iterable[TraceEvent], *,
                  kinds: Iterable[str] | None = None,
                  cycle_range: tuple[int, int] | None = None,
                  thread: int | None = None) -> list[TraceEvent]:
    """Select events by kind set, inclusive cycle range and/or thread."""
    kindset = frozenset(kinds) if kinds is not None else None
    lo, hi = cycle_range if cycle_range is not None else (None, None)
    out = []
    for e in events:
        if kindset is not None and e.kind not in kindset:
            continue
        if lo is not None and e.cycle < lo:
            continue
        if hi is not None and e.cycle > hi:
            continue
        if thread is not None and e.thread != thread:
            continue
        out.append(e)
    return out
