"""Pipeline observability: structured trace events, sinks and the
interval sampler feeding ``repro trace`` / ``repro analyze --timeline``.

The timing model emits events only when a sink is attached (the
tracer-is-None fast path keeps the instrumented hot loop at its
uninstrumented speed), so observability is strictly opt-in.
"""

from .events import (COMMIT, COMPLETE, DECODE, EVENT_KINDS, EXTRACT, FETCH,
                     FILL, ISSUE, MISPREDICT, MODE, MODE_NAMES, PREFETCH,
                     TraceEvent, filter_events, serialize_events)
from .sampler import IntervalSampler
from .sinks import JsonlStreamSink, RingBufferSink, TraceSink

__all__ = ["TraceEvent", "EVENT_KINDS", "MODE_NAMES", "filter_events",
           "serialize_events", "FETCH", "DECODE", "ISSUE", "COMPLETE",
           "COMMIT", "MISPREDICT", "MODE", "EXTRACT", "PREFETCH", "FILL",
           "IntervalSampler", "JsonlStreamSink", "RingBufferSink",
           "TraceSink"]
