"""Pipeline observability: structured trace events, sinks, the interval
sampler and the comparison/rendering layer feeding ``repro trace``,
``repro analyze --timeline`` and ``repro report``.

The timing model emits events only when a sink is attached (the
tracer-is-None fast path keeps the instrumented hot loop at its
uninstrumented speed), so observability is strictly opt-in.  On top of
the raw streams sit pure-data tools: :class:`IntervalSampler` collects
per-interval (and per-thread) series, :func:`diff_timelines` aligns a
baseline and a SPEAR run to localize the speedup, and ``render``
produces sparklines, SVG and the ``repro report`` markdown.
"""

from .compare import (NEUTRAL_CYCLES, PE_EVENT_KINDS, SuiteDiff,
                      SuiteInvariantError, TimelineAlignmentError,
                      TimelineDiff, count_pe_events, diff_timelines)
from .events import (COMMIT, COMPLETE, DECODE, EVENT_KINDS, EXTRACT, FETCH,
                     FILL, ISSUE, JOB_DONE, JOB_FAILED, JOB_PENDING,
                     JOB_RUNNING, JOB_STATES, JobEvent, MISPREDICT, MODE,
                     MODE_NAMES, POLICY, PREFETCH, TraceEvent, filter_events,
                     serialize_events)
from .render import (render_diff_svg, render_diff_text, render_report,
                     render_suite_report, render_suite_svg,
                     render_timeline_svg, render_timeline_text, sparkline)
from .sampler import THREAD_NAMES, IntervalSampler
from .sinks import JsonlStreamSink, RingBufferSink, TraceSink

__all__ = ["TraceEvent", "EVENT_KINDS", "MODE_NAMES", "filter_events",
           "serialize_events", "FETCH", "DECODE", "ISSUE", "COMPLETE",
           "COMMIT", "MISPREDICT", "MODE", "EXTRACT", "PREFETCH", "FILL",
           "POLICY",
           "JobEvent", "JOB_STATES", "JOB_PENDING", "JOB_RUNNING",
           "JOB_DONE", "JOB_FAILED",
           "IntervalSampler", "THREAD_NAMES", "JsonlStreamSink",
           "RingBufferSink", "TraceSink",
           "TimelineAlignmentError", "TimelineDiff", "diff_timelines",
           "SuiteDiff", "SuiteInvariantError",
           "count_pe_events", "PE_EVENT_KINDS", "NEUTRAL_CYCLES",
           "sparkline", "render_timeline_text", "render_diff_text",
           "render_timeline_svg", "render_diff_svg", "render_report",
           "render_suite_svg", "render_suite_report"]
