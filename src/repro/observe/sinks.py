"""Trace sinks: where the timing model's event stream goes.

The simulator calls ``sink.emit(event)`` for every event; the two
implementations trade memory for completeness:

* :class:`RingBufferSink` keeps the last ``capacity`` events in memory —
  the default for interactive use and for caching trace artifacts, with
  a ``dropped`` counter so truncation is never silent;
* :class:`JsonlStreamSink` writes every event to a text stream (or file)
  as canonical JSONL, for full-fidelity captures piped to other tools.

Both accept an optional ``kinds`` filter so a sink can subscribe to a
subset (e.g. only mode transitions) without the simulator knowing.
"""

from __future__ import annotations

from collections import deque
from pathlib import Path
from typing import IO, Iterable, Protocol, runtime_checkable

from .events import TraceEvent, serialize_events


@runtime_checkable
class TraceSink(Protocol):
    """Anything that can receive the simulator's event stream."""

    def emit(self, event: TraceEvent) -> None: ...

    def close(self) -> None: ...


class RingBufferSink:
    """Bounded in-memory sink keeping the newest events.

    ``capacity=None`` keeps everything (use with care on long runs).
    """

    __slots__ = ("_buf", "_kinds", "emitted", "dropped")

    def __init__(self, capacity: int | None = 65536,
                 kinds: Iterable[str] | None = None):
        if capacity is not None and capacity < 1:
            raise ValueError("ring capacity must be positive (or None)")
        self._buf: deque[TraceEvent] = deque(maxlen=capacity)
        self._kinds = frozenset(kinds) if kinds is not None else None
        #: total events offered (accepted by the kind filter)
        self.emitted = 0
        #: accepted events displaced by newer ones (ring overflow)
        self.dropped = 0

    @property
    def capacity(self) -> int | None:
        return self._buf.maxlen

    def emit(self, event: TraceEvent) -> None:
        if self._kinds is not None and event.kind not in self._kinds:
            return
        buf = self._buf
        if buf.maxlen is not None and len(buf) == buf.maxlen:
            self.dropped += 1
        buf.append(event)
        self.emitted += 1

    def close(self) -> None:
        pass

    def events(self) -> list[TraceEvent]:
        """The retained events, oldest first."""
        return list(self._buf)

    def __len__(self) -> int:
        return len(self._buf)

    def serialize(self) -> str:
        """Canonical JSONL of the retained events."""
        return serialize_events(self._buf)


class JsonlStreamSink:
    """Unbounded sink writing canonical JSONL to a stream or file."""

    __slots__ = ("_stream", "_owns", "_kinds", "emitted")

    def __init__(self, target: IO[str] | str | Path,
                 kinds: Iterable[str] | None = None):
        if isinstance(target, (str, Path)):
            self._stream = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self._stream = target
            self._owns = False
        self._kinds = frozenset(kinds) if kinds is not None else None
        self.emitted = 0

    def emit(self, event: TraceEvent) -> None:
        if self._kinds is not None and event.kind not in self._kinds:
            return
        self._stream.write(event.to_json() + "\n")
        self.emitted += 1

    def close(self) -> None:
        if self._owns:
            self._stream.close()
        else:
            self._stream.flush()
