#!/usr/bin/env python
"""Fail on dead relative links in the repo's markdown documentation.

Usage:
    python scripts/check_doc_links.py [FILE ...]

With no arguments, checks README.md, ARCHITECTURE.md, ROADMAP.md,
PAPER.md, EXPERIMENTS.md and every file under docs/.  A link is *dead*
when its target — resolved relative to the file that contains it, with
any ``#fragment`` stripped — does not exist on disk.  External links
(``http://``, ``https://``, ``mailto:``) and pure in-page anchors
(``#section``) are not checked.

Exit status: 0 when every relative link resolves, 1 otherwise (one line
per dead link on stderr).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

DEFAULT_FILES = ["README.md", "ARCHITECTURE.md", "ROADMAP.md", "PAPER.md",
                 "EXPERIMENTS.md"]

#: Inline markdown links: [text](target).  Images ![alt](target) match
#: too (the leading ``!`` is simply not part of the group).  Reference
#: definitions ``[id]: target`` are rare here and intentionally skipped.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Fenced code blocks — links inside them are examples, not navigation.
FENCE = re.compile(r"^(```|~~~)")

EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def doc_files(argv: list[str]) -> list[Path]:
    if argv:
        return [Path(a) for a in argv]
    files = [ROOT / f for f in DEFAULT_FILES if (ROOT / f).exists()]
    files += sorted((ROOT / "docs").glob("*.md"))
    return files


def dead_links(path: Path) -> list[tuple[int, str]]:
    dead = []
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        if FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for target in LINK.findall(line):
            if target.startswith(EXTERNAL) or target.startswith("#"):
                continue
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            if not (path.parent / rel).exists():
                dead.append((lineno, target))
    return dead


def main(argv: list[str]) -> int:
    failures = 0
    checked = 0
    for path in doc_files(argv):
        if not path.exists():
            print(f"{path}: no such file", file=sys.stderr)
            failures += 1
            continue
        checked += 1
        for lineno, target in dead_links(path):
            rel = path.relative_to(ROOT) if path.is_relative_to(ROOT) else path
            print(f"{rel}:{lineno}: dead link: {target}", file=sys.stderr)
            failures += 1
    print(f"checked {checked} files: "
          f"{'all links resolve' if not failures else f'{failures} dead'}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
