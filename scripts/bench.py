#!/usr/bin/env python3
"""Convenience wrapper: ``python scripts/bench.py [--quick] [...]``.

Equivalent to ``python -m repro bench`` with the repository's ``src/`` on
``sys.path``, so it works from a clean checkout without installation.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(["bench", *sys.argv[1:]]))
