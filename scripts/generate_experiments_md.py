#!/usr/bin/env python
"""Assemble EXPERIMENTS.md from the benchmark harness outputs.

Usage:
    pytest benchmarks/ --benchmark-only      # writes benchmarks/out/*.txt
    python scripts/generate_experiments_md.py

The resulting EXPERIMENTS.md records paper-vs-measured for every table and
figure, pulling the actual regenerated tables from ``benchmarks/out/``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
OUT = ROOT / "benchmarks" / "out"

HEADER = """\
# EXPERIMENTS — paper vs. measured

Every table and figure of the paper's evaluation (Section 5), regenerated
by this repository's benchmark harness:

```
pytest benchmarks/ --benchmark-only
python scripts/generate_experiments_md.py
```

Individual figures can also be regenerated directly — and much faster —
via the parallel path (`python -m repro figure 6 --jobs 8`), which fans
the workload × config matrix over worker processes and reuses the
persistent artifact cache; the output is byte-identical to a serial run
(see README § Performance).  The timing kernel is selectable with
`--backend` (`reference` / `fast-forward` / `batched`); all backends are
gated on byte-identical results, so figures and tables do not change
with the backend — only wall-clock does.

Measurement methodology lives in `repro bench` (`--quick` for the small
matrix), which writes a `BENCH_pr*.json` report — **schema 3** as of
PR 6: adds `cpus` (affinity-aware worker count), a per-section `backend`
tag, and a `backends` section comparing per-kernel instructions/s at two
operating points (the paper's 120-cycle memory latency and a deep-stall
1000-cycle point) plus end-to-end batched-sweep wall-clock, each entry
carrying an `identical_to_reference` equivalence check.  Schema 2 added
tracer-overhead and suite-report passes; schema 1 the cold/warm
figure-6 matrix and single-cell throughput.

Absolute numbers are **not** expected to match the paper — the substrate is
a trace-driven cycle-level model over synthetic benchmark analogs at
~10^5-instruction scale, not the authors' execute-driven SimpleScalar runs
at 10^8–10^9 scale (see DESIGN.md §2).  What is reproduced is the *shape*
of every result: which configurations win, roughly by how much, and which
benchmarks refuse to benefit.

## Headline comparison

| Metric | Paper | Measured |
|---|---|---|
{headline_rows}

## Fidelity notes (where the shape bends)

* **Magnitudes run hot.**  Our mean speedups exceed the paper's by roughly
  1.5x.  The oracle-trace model executes p-thread slices with perfectly
  computed addresses, and the synthetic kernels have denser delinquent
  loads than 10^9-instruction SPEC executions; both flatter pre-execution.
  The orderings (256 > 128 > baseline; sf >= shared) are preserved.
* **tr comes out exactly flat (1.00) rather than -1%.**  The paper's tr
  loss comes from wrong-path pre-execution polluting the cache; our
  trace-driven model cannot execute wrong-path slices, so the residual
  SPEAR cost (decode-slot and port steal) nets to zero on a benchmark with
  no misses.  fft does reproduce a genuine loss (0.92 at IFQ-256) through
  its oversized loop-carried slices, and gzip's many-d-load trigger churn
  keeps it near flat, as published.
* **Dedicated FUs help only marginally here** (+0.3–0.8% vs the paper's
  ~+6%): with memory-bound IPCs of 0.3–1.3 the shared 8-wide issue path
  and 4+4 ALUs are rarely contended in our model, so removing FU
  contention has little left to recover.  The sign (sf >= shared, biggest
  where the p-thread is busiest) is preserved.
* **Figure 8's reductions are larger than the paper's** (~50% vs 19.7%
  mean) for the same coverage reason as the speedups; art remaining a
  top-tier reduction and zero-miss benchmarks staying at zero both hold.
* **Figure 9's degradations are steeper** (our kernels are more
  memory-bound than full SPEC), but the ordering — baseline degrades
  most, SPEAR-256 least — matches the paper exactly.

"""

SECTIONS = [
    ("table1", "Table 1 — benchmark suite",
     "Paper: 15 applications (6 Stressmark, 3 DIS, 6 SPEC2000) at 50M–1B "
     "simulated instructions after skipping up to 1B.  Here: the same 15 "
     "analogs at ~10^5 instructions after a 40k-instruction warmup skip; "
     "the d-loads column shows what the SPEAR compiler found."),
    ("table2", "Table 2 — simulation parameters",
     "The machine models, regenerated from the config objects.  All "
     "paper values (widths, 128-entry RUU, bimodal 2048, 4+1/4+1 FUs, "
     "2 ports, 1/12/120-cycle latencies) are defaults."),
    ("figure6", "Figure 6 — normalized IPC (baseline / SPEAR-128 / SPEAR-256)",
     "Paper: +12.7% / +20.1% mean; best mcf +87.6%; tr, field, fft, gzip "
     "between -1% and -6.2%.  Measured: means above, mcf/matrix lead, and "
     "the same four benchmarks are the non-gainers (flat to -8%)."),
    ("table3", "Table 3 — performance enhancement with a longer IFQ",
     "Paper: matrix benefits most from the deeper queue (1.45x) thanks to "
     "its near-perfect branch prediction; update/tr regress slightly.  "
     "Measured: matrix is again among the leaders; fft and gzip dip below "
     "1.0 (our analogs' deep-queue losers)."),
    ("figure7", "Figure 7 — dedicated functional units (SPEAR.sf)",
     "Paper: +18.9% / +26.3% mean for sf-128/sf-256.  Measured: sf >= "
     "shared everywhere, with small margins (see fidelity notes)."),
    ("figure8", "Figure 8 — L1-D cache miss reduction",
     "Paper: 19.7% of misses removed on average (SPEAR-256); best art "
     "-38.8%.  Measured: art remains top-tier; zero-miss benchmarks "
     "(tr, field) are exactly unchanged."),
    ("figure9", "Figure 9 — long-latency tolerance",
     "Paper: at mem=200/L2=20 the baseline keeps 51.5% of its short-"
     "latency IPC, SPEAR-128 60.3%, SPEAR-256 61.6%.  Measured: same "
     "ordering (baseline degrades most, SPEAR-256 least) on the same six "
     "benchmarks."),
    ("timeliness", "Observability — speculative-fill timeliness",
     "Not in the paper's figures, but the mechanism behind them: every "
     "speculative L1-D fill (p-thread pre-execution or the stride "
     "prefetcher) is classified as **timely** (the main thread hit the "
     "block after the fill completed — full latency hidden), **late** "
     "(the main thread merged into the still-in-flight fill — latency "
     "partially hidden), or **unused** (evicted or never touched); "
     "**redundant** counts attempts that targeted already-resident or "
     "in-flight blocks.  Per source `timely + late + unused == fills`.  "
     "Reading it: late fills dominate timely ones on the hardest traces "
     "(pointer, mcf, update) — pre-execution converts full misses into "
     "shorter ones, it rarely makes them free, and `update` (0% timely, "
     "a serial hash-update chain with no slack) matches its ≈1.00 "
     "Figure 6 speedup.  Timeliness tracks the Figure 6 speedups "
     "(art/SPEAR-256 and gzip lead), `unused == 0` across the board "
     "shows SPEAR's accuracy advantage over pattern prefetching, and "
     "SPEAR-256 rows usually carry more fills at a better timely share "
     "— the mechanism behind Table 3's longer-IFQ gains."),
    ("timeline_diff", "Observability — where in the run the speedup lives",
     "`repro report ll4` in table form: the baseline and SPEAR-128 "
     "timelines aligned on the interval grid, with the cumulative "
     "cycles-saved curve and each interval attributed to pre-execution "
     "(extract/fill events in the window) or phase variance.  The final "
     "cumulative row equals the end-to-end cycle gap exactly — the "
     "alignment invariant the test suite pins."),
    ("per_thread", "Observability — per-thread interval series",
     "The same traced run split by hardware thread: the main program "
     "thread and the SPEAR p-thread each get per-interval instructions "
     "completed, issue share and L1 misses.  The p-thread's issue share "
     "is the paper's 'no extra fetch bandwidth' claim made measurable: "
     "pre-execution rides on stolen decode slots, visible here as a "
     "~10% issue share while the main thread keeps its IPC."),
    ("suite", "Observability — whole-suite report",
     "`repro report --suite` in table form: baseline vs SPEAR-128 for "
     "all 15 workloads through the traced pipeline, one row per "
     "workload plus the geometric-mean footer.  Two exact invariants "
     "hold by construction and are re-checked before rendering: each "
     "speedup is the raw cycle ratio (`base/model`) and the geomean is "
     "the product of those ratios raised to 1/n — the table can be "
     "cross-checked against Figure 6 row by row.  The same cells run "
     "through the fault-tolerant parallel engine (`--jobs N`), with "
     "traced payloads spilled to the disk cache and journaled by "
     "content-hash reference, so the document is byte-identical at any "
     "job count and after a crash + `--resume`."),
    ("fuzz_campaign", "Differential fuzzing — random-kernel campaign",
     "Beyond the paper: a seeded random-kernel campaign (`repro fuzz "
     "run`) drives generated programs — pointer chases, gathers, "
     "streams, stores, byte accesses, fp, div edges and data-dependent "
     "hammocks — through the full pipeline, cross-checking an "
     "independent IR oracle against the functional simulator, commit "
     "conservation, the fill partition, cross-backend byte drift and "
     "sampled batched sweeps.  The triage is byte-deterministic at any "
     "`--jobs`.  The full `--seed 0 --count 1000` campaign classifies "
     "421 speedup / 578 neutral / 1 regression / 0 divergence (mean "
     "SPEAR/baseline IPC ratio 1.11, top 1.85x) — SPEAR helps or is "
     "neutral on random kernels too, and the lone regression is an "
     "L1-resident footprint where p-threads only steal fetch "
     "bandwidth.  Its first run shook out two real bugs (an SRL "
     "canonicalisation bug shared by simulator and oracle, and an "
     "unencodable `li INT64_MIN`), both fixed with shrunk reproducers "
     "under `tests/regress/`; four kernels are promoted as the `fz*` "
     "workloads.  See docs/fuzzing.md."),
    ("fuzz_coverage", "Coverage-guided fuzzing — blind vs guided at equal "
     "budget",
     "The coverage engine bands every verdict into a behaviour vector "
     "(trigger fires, PE-mode residency, chaining depth, fill mix, miss "
     "bands, slice shape, outcome) and the guided campaign (`repro fuzz "
     "run --guided`) schedules each batch's budget over a palette of "
     "dial arms plus spec-IR mutation arms by recent first-hit novelty "
     "— rank-concentrated largest-remainder apportionment, integer "
     "arithmetic end to end, so maps and plans are byte-identical at "
     "any `--jobs` and across crash + `--resume`.  At an equal 200-"
     "program budget the guided campaign covers strictly more distinct "
     "behaviour bins than the blind default-dials campaign; the arm "
     "table shows where the budget concentrated (the near-coin-flip "
     "hammock arm, the 4x-long 'marathon' arm and the `field` mutation "
     "arm carry most first hits).  `repro fuzz distill` then greedily "
     "set-covers the facets into the pinned CI corpus under "
     "`tests/regress/corpus/`.  See docs/fuzzing.md."),
    ("motivation", "Motivation — traditional prefetching vs pre-execution",
     "Section 1's claim, measured: a deep-lookahead stride prefetcher and "
     "a next-line prefetcher excel on regular streams (art, matrix, "
     "equake) but fade on irregular patterns; on the pure pointer chase "
     "they are helpless while pre-execution still delivers."),
    ("ablation_trigger_threshold", "Ablation — trigger occupancy threshold",
     "The paper picks half the IFQ 'empirically' (§3.2); the sweep shows "
     "the choice is robust."),
    ("ablation_extract_width", "Ablation — PE extraction width",
     "The paper fixes extraction at issue_width/2 = 4 so the main thread "
     "keeps half the decode bandwidth."),
    ("ablation_livein_copy", "Ablation — live-in copy cost",
     "The paper assumes one cycle per copied register (§3.2)."),
    ("ablation_priority", "Ablation — p-thread issue priority",
     "The paper gives p-thread instructions scheduling priority (§3.3)."),
    ("ablation_drain_policy", "Ablation — deterministic-state drain policy",
     "DESIGN.md §6: the paper's literal 'wait until everything decoded "
     "has committed' starves extraction when ROB size == IFQ size; the "
     "live-in-producer drain is the faithful-but-workable reading."),
    ("ablation_wrong_path", "Ablation — wrong-path fetch model",
     "How mispredict handling feeds (or starves) the trigger logic."),
    ("ablation_chaining", "Ablation — chaining triggers",
     "Collins et al.'s chaining (related work): a finishing p-thread "
     "hands off to the next dormant d-load regardless of IFQ occupancy."),
    ("ablation_region_policy", "Ablation — region policy",
     "The paper's future work on region selection: innermost-only vs the "
     "120-d-cycle budget vs growing to the outermost call-free loop."),
    ("ablation_policy", "Ablation — adaptive trigger policy",
     "Fixed (the paper's operating point) vs the timeliness-feedback "
     "adaptive policies of docs/adaptive-policy.md: adaptive-epoch "
     "converges across repeated runs and by construction never falls "
     "below fixed; adaptive-phase re-decides inside one run at "
     "decision-interval boundaries.  The d-* columns are the "
     "adaptive-epoch fill-timeliness movement vs fixed."),
]


def _headline_rows() -> str:
    fig6 = (OUT / "figure6.txt").read_text()
    fig7 = (OUT / "figure7.txt").read_text()
    fig8 = (OUT / "figure8.txt").read_text()
    fig9 = (OUT / "figure9.txt").read_text()

    def grab(text, pat):
        m = re.search(pat, text)
        return m.group(1) if m else "?"

    rows = [
        ("Mean speedup, SPEAR-128", "+12.7%",
         grab(fig6, r"mean SPEAR-128: (\+?[\d.]+%)")),
        ("Mean speedup, SPEAR-256", "+20.1%",
         grab(fig6, r"mean SPEAR-256: (\+?[\d.]+%)")),
        ("Mean speedup, SPEAR.sf-128", "+18.9%",
         grab(fig7, r"mean SPEAR\.sf-128: (\+?[\d.]+%)")),
        ("Mean speedup, SPEAR.sf-256", "+26.3%",
         grab(fig7, r"mean SPEAR\.sf-256: (\+?[\d.]+%)")),
        ("Best-case benchmark", "mcf (+87.6%)",
         "mcf / matrix (see Figure 6 table)"),
        ("Mean L1 miss reduction (256)", "19.7%",
         grab(fig8, r"SPEAR-256: ([\d.]+%)")),
        ("IPC loss at longest latency, baseline", "48.5%",
         grab(fig9, r"baseline: loses ([\d.]+%)")),
        ("IPC loss at longest latency, SPEAR-128", "39.7%",
         grab(fig9, r"SPEAR-128: loses ([\d.]+%)")),
        ("IPC loss at longest latency, SPEAR-256", "38.4%",
         grab(fig9, r"SPEAR-256: loses ([\d.]+%)")),
    ]
    return "\n".join(f"| {m} | {p} | {v} |" for m, p, v in rows)


def main() -> None:
    missing = [n for n, _, _ in SECTIONS if not (OUT / f"{n}.txt").exists()]
    if missing:
        sys.exit(f"missing benchmark outputs {missing}; "
                 f"run: pytest benchmarks/ --benchmark-only")

    parts = [HEADER.format(headline_rows=_headline_rows())]
    for name, title, commentary in SECTIONS:
        body = (OUT / f"{name}.txt").read_text().rstrip()
        parts.append(f"## {title}\n\n{commentary}\n\n```\n{body}\n```\n")
    (ROOT / "EXPERIMENTS.md").write_text("\n".join(parts))
    print(f"wrote {ROOT / 'EXPERIMENTS.md'}")


if __name__ == "__main__":
    main()
